package linalg

import (
	"fmt"
	"math"
)

// Op is a linear operator A presented through its two matrix-vector
// products. Both *Matrix and *Sparse satisfy it, as does the ColScaled
// wrapper, so iterative solvers can run against any of them — in
// particular against an implicitly column-scaled routing matrix without
// ever materializing the scaled copy.
type Op interface {
	Rows() int
	Cols() int
	// MulVecTo computes dst = A·x.
	MulVecTo(dst, x []float64)
	// TMulVecTo computes dst = Aᵀ·x.
	TMulVecTo(dst, x []float64)
}

// ColScaled wraps an operator as A·diag(scale): column j of the wrapped
// operator is scale[j] times column j of a. It is the implicit form of
// the weighted-tomogravity column scaling R·W^{1/2} — no copy of R, no
// per-call matrix build. The wrapper allocates one scratch vector at
// construction and is therefore NOT safe for concurrent use; create one
// per goroutine (they are cheap).
type ColScaled struct {
	a       Op
	scale   []float64
	scratch []float64
}

// NewColScaled wraps a as a ColScaled operator. It panics when the scale
// vector does not match a's column count.
func NewColScaled(a Op, scale []float64) *ColScaled {
	if len(scale) != a.Cols() {
		panic(fmt.Sprintf("linalg: ColScaled with %d scales for %d columns", len(scale), a.Cols()))
	}
	return &ColScaled{a: a, scale: scale, scratch: make([]float64, a.Cols())}
}

// Rows returns the wrapped operator's row count.
func (c *ColScaled) Rows() int { return c.a.Rows() }

// Cols returns the wrapped operator's column count.
func (c *ColScaled) Cols() int { return c.a.Cols() }

// MulVecTo computes dst = A·diag(scale)·x.
func (c *ColScaled) MulVecTo(dst, x []float64) {
	for j, v := range x {
		c.scratch[j] = v * c.scale[j]
	}
	c.a.MulVecTo(dst, c.scratch)
}

// TMulVecTo computes dst = diag(scale)·Aᵀ·x.
func (c *ColScaled) TMulVecTo(dst, x []float64) {
	c.a.TMulVecTo(dst, x)
	for j := range dst {
		dst[j] *= c.scale[j]
	}
}

// LSQROptions tune the iterative solver. The zero value selects the
// defaults documented on each field.
type LSQROptions struct {
	// Damp adds Tikhonov regularization: the problem solved is
	// min ‖A·x − b‖² + Damp²·‖x‖². Zero solves the plain least-squares
	// problem.
	Damp float64
	// ATol and BTol are the Paige-Saunders stopping tolerances: the
	// iteration stops when ‖Aᵀr‖ ≤ ATol·‖A‖·‖r‖ (least-squares
	// optimality) or ‖r‖ ≤ BTol·‖b‖ + ATol·‖A‖·‖x‖ (consistent-system
	// residual). Zero selects 1e-13, tight enough that the solution
	// matches the dense SVD path to well below the pipeline's 1e-6
	// agreement contract.
	ATol, BTol float64
	// MaxIter bounds the iterations; zero selects 4·(Rows+Cols), a
	// generous budget for the well-conditioned routing systems this
	// repository solves (they converge in a few dozen iterations).
	MaxIter int
}

// LSQRReport describes how an LSQR run ended. Every field is computed
// from the same deterministic recurrences as the solution itself, so
// reports are bit-identical across runs and worker counts.
type LSQRReport struct {
	// Iterations actually performed.
	Iterations int
	// ResidualNorm is the final estimate of ‖b − A·x‖ (including the
	// damping term when Damp > 0).
	ResidualNorm float64
	// ATResidualNorm is the final estimate of ‖Aᵀ·(b − A·x)‖, the
	// least-squares optimality measure.
	ATResidualNorm float64
	// Converged reports whether a stopping tolerance was met within
	// MaxIter (breakdown of the bidiagonalization — an exactly conquered
	// Krylov space — also counts as convergence).
	Converged bool
}

// LSQR solves min ‖A·x − b‖² + damp²·‖x‖² by the Paige-Saunders
// Golub-Kahan bidiagonalization method, returning the minimum-norm
// least-squares solution (the same solution SolveMinNorm computes from a
// dense SVD: LSQR iterates live in range(Aᵀ), which pins down the
// minimum-norm member of the solution set). Each iteration costs one
// A·v and one Aᵀ·u product, so for a sparse operator the total cost is
// O(iterations · nnz) — for the routing systems of this repository a few
// dozen sparse mat-vecs versus a fresh O((L+2n)²·n²) Jacobi SVD.
//
// The returned error reports shape mismatches only; hitting MaxIter is
// reported through Report.Converged so callers can decide whether an
// almost-converged solution is usable.
func LSQR(a Op, b []float64, opts LSQROptions) ([]float64, LSQRReport, error) {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, LSQRReport{}, fmt.Errorf("%w: LSQR A %dx%d with b of %d", ErrShape, m, n, len(b))
	}
	atol, btol := opts.ATol, opts.BTol
	if atol <= 0 {
		atol = 1e-13
	}
	if btol <= 0 {
		btol = 1e-13
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * (m + n)
	}
	damp := opts.Damp

	x := make([]float64, n)
	u := append([]float64(nil), b...)
	beta := Norm2(u)
	bnorm := beta
	rep := LSQRReport{}
	if beta == 0 {
		// b = 0: the minimum-norm solution is x = 0.
		rep.Converged = true
		return x, rep, nil
	}
	ScaleVec(1/beta, u)
	v := make([]float64, n)
	a.TMulVecTo(v, u)
	alpha := Norm2(v)
	if alpha == 0 {
		// Aᵀb = 0: x = 0 is already least-squares optimal.
		rep.ResidualNorm = beta
		rep.Converged = true
		return x, rep, nil
	}
	ScaleVec(1/alpha, v)
	w := append([]float64(nil), v...)

	var (
		rhobar = alpha
		phibar = beta
		// Running estimates of ‖A‖_F, ‖r‖ split terms and ‖x‖.
		anorm, xxnorm float64
		res2, xnorm   float64
		cs2, sn2, z   = -1.0, 0.0, 0.0
		tmpu          = make([]float64, m)
		tmpv          = make([]float64, n)
	)

	for iter := 1; iter <= maxIter; iter++ {
		rep.Iterations = iter
		// Continue the bidiagonalization: β·u = A·v − α·u, then
		// α·v = Aᵀ·u − β·v.
		a.MulVecTo(tmpu, v)
		for i := range u {
			u[i] = tmpu[i] - alpha*u[i]
		}
		beta = Norm2(u)
		if beta > 0 {
			ScaleVec(1/beta, u)
			a.TMulVecTo(tmpv, u)
			for i := range v {
				v[i] = tmpv[i] - beta*v[i]
			}
			alpha = Norm2(v)
			if alpha > 0 {
				ScaleVec(1/alpha, v)
			}
		}
		anorm = math.Hypot(anorm, math.Hypot(alpha, math.Hypot(beta, damp)))

		// Eliminate the damping term from the lower bidiagonal.
		rhobar1 := rhobar
		psi := 0.0
		if damp > 0 {
			rhobar1 = math.Hypot(rhobar, damp)
			c1 := rhobar / rhobar1
			s1 := damp / rhobar1
			psi = s1 * phibar
			phibar = c1 * phibar
		}

		// Plane rotation annihilating β, updating x and w.
		rho := math.Hypot(rhobar1, beta)
		c := rhobar1 / rho
		s := beta / rho
		theta := s * alpha
		rhobar = -c * alpha
		phi := c * phibar
		phibar = s * phibar

		t1 := phi / rho
		t2 := -theta / rho
		for i := range x {
			wi := w[i]
			x[i] += t1 * wi
			w[i] = v[i] + t2*wi
		}

		// Norm estimates for the stopping tests (Paige-Saunders §5.3;
		// res2/psi track the damping contribution to the residual, and
		// ‖x‖ comes from the right-rotation recurrence that eliminates
		// the super-diagonal of the upper-bidiagonal system).
		res2 = math.Hypot(res2, psi)
		rnorm := math.Hypot(res2, phibar)
		arnorm := alpha * math.Abs(s*phi)
		delta := sn2 * rho
		gambar := -cs2 * rho
		rhs := phi - delta*z
		if gambar != 0 {
			zbar := rhs / gambar
			xnorm = math.Sqrt(xxnorm + zbar*zbar)
		}
		gamma := math.Hypot(gambar, theta)
		if gamma > 0 {
			cs2 = gambar / gamma
			sn2 = theta / gamma
			z = rhs / gamma
			xxnorm += z * z
		}

		rep.ResidualNorm = rnorm
		rep.ATResidualNorm = arnorm

		// Stopping tests.
		test1 := rnorm / bnorm
		test2 := 0.0
		if anorm > 0 && rnorm > 0 {
			test2 = arnorm / (anorm * rnorm)
		}
		if test1 <= btol+atol*anorm*xnorm/bnorm || test2 <= atol {
			rep.Converged = true
			return x, rep, nil
		}
		if alpha == 0 || beta == 0 {
			// Bidiagonalization breakdown: the Krylov space is exhausted
			// and x is exact over it.
			rep.Converged = true
			return x, rep, nil
		}
	}
	return x, rep, nil
}
