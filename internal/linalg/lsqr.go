package linalg

import (
	"fmt"
	"math"
)

// Op is a linear operator A presented through its two matrix-vector
// products. Both *Matrix and *Sparse satisfy it, as does the ColScaled
// wrapper, so iterative solvers can run against any of them — in
// particular against an implicitly column-scaled routing matrix without
// ever materializing the scaled copy.
type Op interface {
	Rows() int
	Cols() int
	// MulVecTo computes dst = A·x.
	MulVecTo(dst, x []float64)
	// TMulVecTo computes dst = Aᵀ·x.
	TMulVecTo(dst, x []float64)
}

// ColScaled wraps an operator as A·diag(scale): column j of the wrapped
// operator is scale[j] times column j of a. It is the implicit form of
// the weighted-tomogravity column scaling R·W^{1/2} — no copy of R, no
// per-call matrix build. The wrapper allocates one scratch vector at
// construction and is therefore NOT safe for concurrent use; create one
// per goroutine (they are cheap).
type ColScaled struct {
	a       Op
	scale   []float64
	scratch []float64
}

// NewColScaled wraps a as a ColScaled operator. It panics when the scale
// vector does not match a's column count.
func NewColScaled(a Op, scale []float64) *ColScaled {
	if len(scale) != a.Cols() {
		panic(fmt.Sprintf("linalg: ColScaled with %d scales for %d columns", len(scale), a.Cols()))
	}
	return &ColScaled{a: a, scale: scale, scratch: make([]float64, a.Cols())}
}

// Rows returns the wrapped operator's row count.
func (c *ColScaled) Rows() int { return c.a.Rows() }

// Cols returns the wrapped operator's column count.
func (c *ColScaled) Cols() int { return c.a.Cols() }

// MulVecTo computes dst = A·diag(scale)·x.
func (c *ColScaled) MulVecTo(dst, x []float64) {
	for j, v := range x {
		c.scratch[j] = v * c.scale[j]
	}
	c.a.MulVecTo(dst, c.scratch)
}

// TMulVecTo computes dst = diag(scale)·Aᵀ·x.
func (c *ColScaled) TMulVecTo(dst, x []float64) {
	c.a.TMulVecTo(dst, x)
	for j := range dst {
		dst[j] *= c.scale[j]
	}
}

// LSQROptions tune the iterative solver. The zero value selects the
// defaults documented on each field.
type LSQROptions struct {
	// Damp adds Tikhonov regularization: the problem solved is
	// min ‖A·x − b‖² + Damp²·‖x‖². Zero solves the plain least-squares
	// problem.
	Damp float64
	// ATol and BTol are the Paige-Saunders stopping tolerances: the
	// iteration stops when ‖Aᵀr‖ ≤ ATol·‖A‖·‖r‖ (least-squares
	// optimality) or ‖r‖ ≤ BTol·‖b‖ + ATol·‖A‖·‖x‖ (consistent-system
	// residual). Zero selects 1e-13, tight enough that the solution
	// matches the dense SVD path to well below the pipeline's 1e-6
	// agreement contract.
	ATol, BTol float64
	// MaxIter bounds the iterations; zero selects 4·(Rows+Cols), a
	// generous budget for the well-conditioned routing systems this
	// repository solves (they converge in a few dozen iterations).
	MaxIter int
	// X0 warm-starts the solve from a caller-supplied iterate: LSQR
	// iterates on the residual system A·z = b − A·x0 and returns
	// x = x0 + z, so a good x0 (the previous bin's converged correction
	// on a slowly-varying series) skips the iterations a cold start
	// spends rediscovering it. Report semantics are unchanged — the
	// stopping tests and ResidualNorm measure the residual of the
	// ORIGINAL system b − A·x, and ‖b − A·x0‖ = 0 exits immediately with
	// x = x0 and zero iterations. A nil X0 (and an all-zero X0) is the
	// cold start, bit-identical to the pre-warm-start solver.
	//
	// With a nonzero x0 the returned solution is x0 + min-norm(residual
	// system) rather than the minimum-norm solution of the original
	// system; for the consistent routing systems of this repository the
	// two coincide whenever x0 itself lies in range(Aᵀ) — which a
	// previous LSQR solution always does.
	X0 []float64
	// Work, when non-nil, supplies the solve's working vectors so
	// steady-state callers allocate nothing per solve. The returned
	// solution aliases Work's solution buffer and is valid only until
	// the next solve that uses the same Work; copy it to keep it.
	Work *LSQRWork
}

// LSQRWork holds the working vectors of one LSQR solve for reuse across
// solves of equal (or varying) shape. The zero value is ready to use:
// buffers grow on demand and are fully overwritten before being read,
// so reuse cannot leak state between solves — results are bit-identical
// to a fresh allocation. Not safe for concurrent use; give each worker
// its own.
type LSQRWork struct {
	x, u, v, w, tmpu, tmpv []float64
}

// grow resizes a buffer to length n, reusing capacity when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// vectors returns the six working slices for an m×n solve, growing the
// backing buffers as needed.
func (w *LSQRWork) vectors(m, n int) (x, u, v, ww, tmpu, tmpv []float64) {
	w.x = grow(w.x, n)
	w.u = grow(w.u, m)
	w.v = grow(w.v, n)
	w.w = grow(w.w, n)
	w.tmpu = grow(w.tmpu, m)
	w.tmpv = grow(w.tmpv, n)
	return w.x, w.u, w.v, w.w, w.tmpu, w.tmpv
}

// LSQRReport describes how an LSQR run ended. Every field is computed
// from the same deterministic recurrences as the solution itself, so
// reports are bit-identical across runs and worker counts.
type LSQRReport struct {
	// Iterations actually performed.
	Iterations int
	// ResidualNorm is the final estimate of ‖b − A·x‖ (including the
	// damping term when Damp > 0).
	ResidualNorm float64
	// ATResidualNorm is the final estimate of ‖Aᵀ·(b − A·x)‖, the
	// least-squares optimality measure.
	ATResidualNorm float64
	// Converged reports whether a stopping tolerance was met within
	// MaxIter (breakdown of the bidiagonalization — an exactly conquered
	// Krylov space — also counts as convergence).
	Converged bool
}

// LSQR solves min ‖A·x − b‖² + damp²·‖x‖² by the Paige-Saunders
// Golub-Kahan bidiagonalization method, returning the minimum-norm
// least-squares solution (the same solution SolveMinNorm computes from a
// dense SVD: LSQR iterates live in range(Aᵀ), which pins down the
// minimum-norm member of the solution set). Each iteration costs one
// A·v and one Aᵀ·u product, so for a sparse operator the total cost is
// O(iterations · nnz) — for the routing systems of this repository a few
// dozen sparse mat-vecs versus a fresh O((L+2n)²·n²) Jacobi SVD.
//
// The returned error reports shape mismatches only; hitting MaxIter is
// reported through Report.Converged so callers can decide whether an
// almost-converged solution is usable.
//
// Options.X0 warm-starts the solve and Options.Work makes it
// allocation-free; see their field docs. When Work is supplied, the
// returned slice aliases Work's solution buffer.
func LSQR(a Op, b []float64, opts LSQROptions) ([]float64, LSQRReport, error) {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, LSQRReport{}, fmt.Errorf("%w: LSQR A %dx%d with b of %d", ErrShape, m, n, len(b))
	}
	if opts.X0 != nil && len(opts.X0) != n {
		return nil, LSQRReport{}, fmt.Errorf("%w: LSQR A %dx%d with x0 of %d", ErrShape, m, n, len(opts.X0))
	}
	atol, btol := opts.ATol, opts.BTol
	if atol <= 0 {
		atol = 1e-13
	}
	if btol <= 0 {
		btol = 1e-13
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * (m + n)
	}
	damp := opts.Damp

	wk := opts.Work
	if wk == nil {
		wk = &LSQRWork{}
	}
	x, u, v, w, tmpu, tmpv := wk.vectors(m, n)
	var bnorm float64
	if opts.X0 != nil {
		// Warm start: iterate on the residual system A·z = b − A·x0 with
		// x seeded at x0, so the updates below accumulate x = x0 + z. The
		// stopping tests keep measuring against the ORIGINAL system —
		// bnorm is ‖b‖, and the rnorm recurrence estimates
		// ‖(b − A·x0) − A·z‖ = ‖b − A·x‖ — so a warm solve stops at
		// exactly the tolerance a cold solve targets, just from a closer
		// starting point. An all-zero x0 reproduces the cold path bit for
		// bit (b − A·0 leaves every finite entry unchanged).
		copy(x, opts.X0)
		a.MulVecTo(tmpu, x)
		for i := range u {
			u[i] = b[i] - tmpu[i]
		}
		bnorm = Norm2(b)
	} else {
		for i := range x {
			x[i] = 0
		}
		copy(u, b)
	}
	beta := Norm2(u)
	if opts.X0 == nil {
		bnorm = beta
	}
	rep := LSQRReport{}
	if beta == 0 {
		// b − A·x0 = 0 (for a cold start, b = 0): x is already an exact
		// solution.
		rep.Converged = true
		return x, rep, nil
	}
	if opts.X0 != nil && beta <= btol*bnorm {
		// The warm iterate already satisfies the residual tolerance of
		// the original system: re-entering a converged solution returns
		// in zero iterations.
		rep.ResidualNorm = beta
		rep.Converged = true
		return x, rep, nil
	}
	ScaleVec(1/beta, u)
	a.TMulVecTo(v, u)
	alpha := Norm2(v)
	if alpha == 0 {
		// Aᵀ·(b − A·x) = 0: x is already least-squares optimal.
		rep.ResidualNorm = beta
		rep.Converged = true
		return x, rep, nil
	}
	ScaleVec(1/alpha, v)
	copy(w, v)

	var (
		rhobar = alpha
		phibar = beta
		// Running estimates of ‖A‖_F, ‖r‖ split terms and ‖x‖ (of the
		// iterated correction z under a warm start — conservative for
		// the stopping test, which only uses it to loosen the threshold).
		anorm, xxnorm float64
		res2, xnorm   float64
		cs2, sn2, z   = -1.0, 0.0, 0.0
	)

	for iter := 1; iter <= maxIter; iter++ {
		rep.Iterations = iter
		// Continue the bidiagonalization: β·u = A·v − α·u, then
		// α·v = Aᵀ·u − β·v.
		a.MulVecTo(tmpu, v)
		for i := range u {
			u[i] = tmpu[i] - alpha*u[i]
		}
		beta = Norm2(u)
		if beta > 0 {
			ScaleVec(1/beta, u)
			a.TMulVecTo(tmpv, u)
			for i := range v {
				v[i] = tmpv[i] - beta*v[i]
			}
			alpha = Norm2(v)
			if alpha > 0 {
				ScaleVec(1/alpha, v)
			}
		}
		anorm = math.Hypot(anorm, math.Hypot(alpha, math.Hypot(beta, damp)))

		// Eliminate the damping term from the lower bidiagonal.
		rhobar1 := rhobar
		psi := 0.0
		if damp > 0 {
			rhobar1 = math.Hypot(rhobar, damp)
			c1 := rhobar / rhobar1
			s1 := damp / rhobar1
			psi = s1 * phibar
			phibar = c1 * phibar
		}

		// Plane rotation annihilating β, updating x and w.
		rho := math.Hypot(rhobar1, beta)
		c := rhobar1 / rho
		s := beta / rho
		theta := s * alpha
		rhobar = -c * alpha
		phi := c * phibar
		phibar = s * phibar

		t1 := phi / rho
		t2 := -theta / rho
		for i := range x {
			wi := w[i]
			x[i] += t1 * wi
			w[i] = v[i] + t2*wi
		}

		// Norm estimates for the stopping tests (Paige-Saunders §5.3;
		// res2/psi track the damping contribution to the residual, and
		// ‖x‖ comes from the right-rotation recurrence that eliminates
		// the super-diagonal of the upper-bidiagonal system).
		res2 = math.Hypot(res2, psi)
		rnorm := math.Hypot(res2, phibar)
		arnorm := alpha * math.Abs(s*phi)
		delta := sn2 * rho
		gambar := -cs2 * rho
		rhs := phi - delta*z
		if gambar != 0 {
			zbar := rhs / gambar
			xnorm = math.Sqrt(xxnorm + zbar*zbar)
		}
		gamma := math.Hypot(gambar, theta)
		if gamma > 0 {
			cs2 = gambar / gamma
			sn2 = theta / gamma
			z = rhs / gamma
			xxnorm += z * z
		}

		rep.ResidualNorm = rnorm
		rep.ATResidualNorm = arnorm

		// Stopping tests.
		test1 := rnorm / bnorm
		test2 := 0.0
		if anorm > 0 && rnorm > 0 {
			test2 = arnorm / (anorm * rnorm)
		}
		if test1 <= btol+atol*anorm*xnorm/bnorm || test2 <= atol {
			rep.Converged = true
			return x, rep, nil
		}
		if alpha == 0 || beta == 0 {
			// Bidiagonalization breakdown: the Krylov space is exhausted
			// and x is exact over it.
			rep.Converged = true
			return x, rep, nil
		}
	}
	return x, rep, nil
}
