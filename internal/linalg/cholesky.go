package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix // lower triangular, n x n
}

// NewCholesky factors the symmetric positive-definite matrix a.
// Only the lower triangle of a is read. It returns ErrSingular (wrapped)
// if a is not positive definite to working precision.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.Rows(), a.Cols())
	}
	n := a.Rows()
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		// Diagonal entry.
		d := a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: not positive definite at pivot %d (d=%g)", ErrSingular, j, d)
		}
		diag := math.Sqrt(d)
		lrowj[j] = diag
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s / diag
		}
	}
	return &Cholesky{l: l}, nil
}

// NewCholeskyRidge factors a after adding ridge*I to the diagonal; it
// retries with a geometrically growing ridge (up to maxTries doublings)
// when a alone is not positive definite. This is the standard guard used
// by the least-squares solvers for nearly rank-deficient normal equations.
func NewCholeskyRidge(a *Matrix, ridge float64) (*Cholesky, error) {
	const maxTries = 40
	work := a.Clone()
	n := work.Rows()
	added := 0.0
	for try := 0; try < maxTries; try++ {
		ch, err := NewCholesky(work)
		if err == nil {
			return ch, nil
		}
		inc := ridge - added
		if inc <= 0 {
			inc = math.Max(ridge, 1e-300)
		}
		for i := 0; i < n; i++ {
			work.Add(i, i, inc)
		}
		added += inc
		ridge *= 4
	}
	return nil, fmt.Errorf("%w: Cholesky failed even with ridge %g", ErrSingular, added)
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Solve solves A·x = b for x using the stored factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: Cholesky solve with b of %d, want %d", ErrShape, len(b), n)
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// SolveMatrix solves A·X = B column by column.
func (c *Cholesky) SolveMatrix(b *Matrix) (*Matrix, error) {
	n := c.l.Rows()
	if b.Rows() != n {
		return nil, fmt.Errorf("%w: Cholesky solve with B %dx%d, want %d rows", ErrShape, b.Rows(), b.Cols(), n)
	}
	out := NewMatrix(n, b.Cols())
	col := make([]float64, n) // one column buffer reused across all solves
	for j := 0; j < b.Cols(); j++ {
		b.ColInto(j, col)
		x, err := c.Solve(col)
		if err != nil {
			return nil, err
		}
		for i, v := range x {
			out.Set(i, j, v)
		}
	}
	return out, nil
}
