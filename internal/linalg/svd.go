package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U·diag(S)·Vᵀ, where
// for an m x n input with m >= n, U is m x n with orthonormal columns,
// S has n non-negative entries in descending order, and V is n x n
// orthogonal. Inputs with m < n are handled by decomposing the transpose.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// NewSVD computes the thin SVD of a using the one-sided Jacobi method,
// which is simple, numerically robust, and fast enough for the modest
// matrix sizes in this repository (at most a few hundred per side).
func NewSVD(a *Matrix) (*SVD, error) {
	m, n := a.Rows(), a.Cols()
	if m == 0 || n == 0 {
		return &SVD{U: NewMatrix(m, 0), S: nil, V: NewMatrix(n, 0)}, nil
	}
	if m < n {
		// Decompose Aᵀ = U'·S·V'ᵀ, so A = V'·S·U'ᵀ.
		st, err := NewSVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVD{U: st.V, S: st.S, V: st.U}, nil
	}

	// Work on a copy; columns of `work` converge to U·diag(S).
	work := a.Clone()
	v := Identity(n)

	const (
		maxSweeps = 60
		tol       = 1e-13
	)
	// Scale tolerance by the Frobenius norm so convergence is relative.
	fro := work.FrobNorm()
	if fro == 0 {
		// Zero matrix: S = 0, U = first n columns of identity.
		u := NewMatrix(m, n)
		for i := 0; i < n; i++ {
			u.Set(i, i, 1)
		}
		return &SVD{U: u, S: make([]float64, n), V: v}, nil
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					cp := work.At(i, p)
					cq := work.At(i, q)
					app += cp * cp
					aqq += cq * cq
					apq += cp * cq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) {
					continue
				}
				if math.Abs(apq) > off {
					off = math.Abs(apq)
				}
				// Jacobi rotation zeroing the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					cp := work.At(i, p)
					cq := work.At(i, q)
					work.Set(i, p, c*cp-s*cq)
					work.Set(i, q, s*cp+c*cq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off <= tol*fro*fro {
			break
		}
		if sweep == maxSweeps-1 {
			return nil, fmt.Errorf("linalg: Jacobi SVD did not converge in %d sweeps (off=%g)", maxSweeps, off)
		}
	}

	// Extract singular values and normalize U's columns.
	s := make([]float64, n)
	u := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		var nrm float64
		for i := 0; i < m; i++ {
			nrm = math.Hypot(nrm, work.At(i, j))
		}
		s[j] = nrm
		if nrm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, work.At(i, j)/nrm)
			}
		}
	}

	// Sort descending by singular value, permuting U and V consistently.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	us := NewMatrix(m, n)
	vs := NewMatrix(n, n)
	ss := make([]float64, n)
	for newj, oldj := range idx {
		ss[newj] = s[oldj]
		for i := 0; i < m; i++ {
			us.Set(i, newj, u.At(i, oldj))
		}
		for i := 0; i < n; i++ {
			vs.Set(i, newj, v.At(i, oldj))
		}
	}
	return &SVD{U: us, S: ss, V: vs}, nil
}

// Rank returns the numerical rank at relative tolerance rtol (singular
// values below rtol * S[0] count as zero). A non-positive rtol uses a
// machine-precision default.
func (d *SVD) Rank(rtol float64) int {
	if len(d.S) == 0 || d.S[0] == 0 {
		return 0
	}
	if rtol <= 0 {
		rtol = 1e-12
	}
	cut := rtol * d.S[0]
	r := 0
	for _, v := range d.S {
		if v > cut {
			r++
		}
	}
	return r
}

// Cond returns the 2-norm condition number S[0]/S[last]; +Inf when the
// smallest singular value is zero.
func (d *SVD) Cond() float64 {
	if len(d.S) == 0 {
		return 0
	}
	smin := d.S[len(d.S)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return d.S[0] / smin
}
