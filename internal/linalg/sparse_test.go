package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSparseMatrix returns an m x n dense matrix with roughly the
// given fill fraction of nonzero entries (routing-matrix-like: mostly
// zeros, a few positive entries per column).
func randomSparseMatrix(r *rand.Rand, m, n int, fill float64) *Matrix {
	a := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		row := a.Row(i)
		for j := range row {
			if r.Float64() < fill {
				row[j] = r.Float64() + 0.1
			}
		}
	}
	return a
}

func TestSparseFromDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m, n := 1+r.Intn(20), 1+r.Intn(20)
		a := randomSparseMatrix(r, m, n, 0.2)
		s := SparseFromDense(a)
		if s.Rows() != m || s.Cols() != n {
			t.Fatalf("trial %d: shape %dx%d, want %dx%d", trial, s.Rows(), s.Cols(), m, n)
		}
		back := s.Dense()
		if !back.Equal(a, 0) {
			t.Fatalf("trial %d: Dense(SparseFromDense(a)) != a", trial)
		}
		nnz := 0
		for _, v := range a.Data() {
			if v != 0 {
				nnz++
			}
		}
		if s.NNZ() != nnz {
			t.Fatalf("trial %d: NNZ = %d, want %d", trial, s.NNZ(), nnz)
		}
	}
}

// TestNewSparseMatchesFromDense: building from shuffled coordinate
// entries must produce the same matrix — including identical stored
// order, asserted via bitwise-equal MulVec — as the dense round-trip.
func TestNewSparseMatchesFromDense(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		m, n := 1+r.Intn(20), 1+r.Intn(20)
		a := randomSparseMatrix(r, m, n, 0.2)
		var entries []Coord
		for i := 0; i < m; i++ {
			for j, v := range a.Row(i) {
				if v != 0 {
					entries = append(entries, Coord{Row: i, Col: j, Val: v})
				}
			}
		}
		r.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
		got, err := NewSparse(m, n, entries)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := SparseFromDense(a)
		if got.NNZ() != want.NNZ() {
			t.Fatalf("trial %d: NNZ %d, want %d", trial, got.NNZ(), want.NNZ())
		}
		if !got.Dense().Equal(a, 0) {
			t.Fatalf("trial %d: NewSparse disagrees with the dense source", trial)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		gv, err := got.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		wv, err := want.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gv {
			if gv[i] != wv[i] {
				t.Fatalf("trial %d: MulVec[%d] = %g, want %g bitwise (stored order must match)", trial, i, gv[i], wv[i])
			}
		}
	}
}

func TestNewSparseDropsZeros(t *testing.T) {
	s, err := NewSparse(2, 2, []Coord{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (zero entry must be dropped)", s.NNZ())
	}
}

func TestNewSparseRejectsBadEntries(t *testing.T) {
	if _, err := NewSparse(2, 2, []Coord{{Row: 2, Col: 0, Val: 1}}); !errors.Is(err, ErrShape) {
		t.Errorf("out-of-range row: err = %v, want ErrShape", err)
	}
	if _, err := NewSparse(2, 2, []Coord{{Row: 0, Col: -1, Val: 1}}); !errors.Is(err, ErrShape) {
		t.Errorf("negative col: err = %v, want ErrShape", err)
	}
	dups := []Coord{{Row: 1, Col: 1, Val: 1}, {Row: 1, Col: 1, Val: 2}}
	if _, err := NewSparse(2, 2, dups); !errors.Is(err, ErrShape) {
		t.Errorf("duplicate entry: err = %v, want ErrShape", err)
	}
	if _, err := NewSparse(-1, 2, nil); !errors.Is(err, ErrShape) {
		t.Errorf("negative shape: err = %v, want ErrShape", err)
	}
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		m, n := 1+r.Intn(25), 1+r.Intn(25)
		a := randomSparseMatrix(r, m, n, 0.15)
		s := SparseFromDense(a)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		want, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: MulVec[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
		wantT, err := a.TMulVec(y)
		if err != nil {
			t.Fatal(err)
		}
		gotT, err := s.TMulVec(y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantT {
			if math.Abs(wantT[i]-gotT[i]) > 1e-12*(1+math.Abs(wantT[i])) {
				t.Fatalf("trial %d: TMulVec[%d] = %g, want %g", trial, i, gotT[i], wantT[i])
			}
		}
	}
}

func TestSparseShapeErrors(t *testing.T) {
	s := SparseFromDense(NewMatrix(3, 2))
	if _, err := s.MulVec(make([]float64, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec wrong length: err = %v, want ErrShape", err)
	}
	if _, err := s.TMulVec(make([]float64, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("TMulVec wrong length: err = %v, want ErrShape", err)
	}
}

func TestColScaledMatchesExplicitScaling(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		m, n := 1+r.Intn(15), 1+r.Intn(15)
		a := randomSparseMatrix(r, m, n, 0.3)
		scale := make([]float64, n)
		for j := range scale {
			scale[j] = r.Float64() + 0.5
		}
		// Explicitly scaled dense copy for reference.
		ref := a.Clone()
		for i := 0; i < m; i++ {
			row := ref.Row(i)
			for j := range row {
				row[j] *= scale[j]
			}
		}
		op := NewColScaled(SparseFromDense(a), scale)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		got := make([]float64, m)
		op.MulVecTo(got, x)
		want, _ := ref.MulVec(x)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: MulVecTo[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
		gotT := make([]float64, n)
		op.TMulVecTo(gotT, y)
		wantT, _ := ref.TMulVec(y)
		for i := range wantT {
			if math.Abs(wantT[i]-gotT[i]) > 1e-12*(1+math.Abs(wantT[i])) {
				t.Fatalf("trial %d: TMulVecTo[%d] = %g, want %g", trial, i, gotT[i], wantT[i])
			}
		}
	}
}

func TestColIntoMatchesCol(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randomSparseMatrix(r, 9, 6, 0.5)
	dst := make([]float64, 9)
	for j := 0; j < 6; j++ {
		a.ColInto(j, dst)
		want := a.Col(j)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("ColInto(%d)[%d] = %g, want %g", j, i, dst[i], want[i])
			}
		}
	}
}
