package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q·R of an m x n matrix with
// m >= n. Q is m x m orthogonal (stored implicitly as Householder vectors)
// and R is upper triangular m x n (upper n x n block is the useful part).
type QR struct {
	qr   *Matrix   // packed factors: R in upper triangle, reflectors below
	rdia []float64 // diagonal of R
	m, n int
}

// NewQR factors a (m x n, m >= n) using Householder reflections.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("%w: QR needs rows >= cols, got %dx%d", ErrShape, m, n)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below (and including) the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Add(k, k, 1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Add(i, j, s*qr.At(i, k))
			}
		}
		rdia[k] = -nrm
	}
	return &QR{qr: qr, rdia: rdia, m: m, n: n}, nil
}

// FullRank reports whether R has no zero (to machine tolerance) diagonal.
func (q *QR) FullRank() bool {
	tol := 1e-14 * q.maxDiag()
	for _, d := range q.rdia {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

func (q *QR) maxDiag() float64 {
	max := 0.0
	for _, d := range q.rdia {
		if a := math.Abs(d); a > max {
			max = a
		}
	}
	if max == 0 {
		return 1
	}
	return max
}

// Solve returns the least-squares solution x minimizing ||A·x - b||₂.
// It returns ErrSingular (wrapped) if A is rank deficient.
func (q *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != q.m {
		return nil, fmt.Errorf("%w: QR solve with b of %d, want %d", ErrShape, len(b), q.m)
	}
	if !q.FullRank() {
		return nil, fmt.Errorf("%w: rank-deficient QR", ErrSingular)
	}
	y := CloneVec(b)
	// Apply Qᵀ to b.
	for k := 0; k < q.n; k++ {
		if q.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < q.m; i++ {
			s += q.qr.At(i, k) * y[i]
		}
		s = -s / q.qr.At(k, k)
		for i := k; i < q.m; i++ {
			y[i] += s * q.qr.At(i, k)
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, q.n)
	for i := q.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < q.n; j++ {
			s -= q.qr.At(i, j) * x[j]
		}
		x[i] = s / q.rdia[i]
	}
	return x, nil
}

// R returns the upper-triangular n x n factor.
func (q *QR) R() *Matrix {
	r := NewMatrix(q.n, q.n)
	for i := 0; i < q.n; i++ {
		r.Set(i, i, q.rdia[i])
		for j := i + 1; j < q.n; j++ {
			r.Set(i, j, q.qr.At(i, j))
		}
	}
	return r
}

// Q returns the thin m x n orthonormal factor.
func (q *QR) Q() *Matrix {
	qm := NewMatrix(q.m, q.n)
	for j := 0; j < q.n; j++ {
		// Start from the j-th unit vector and apply the reflectors in reverse.
		col := make([]float64, q.m)
		col[j] = 1
		for k := q.n - 1; k >= 0; k-- {
			if q.qr.At(k, k) == 0 {
				continue
			}
			var s float64
			for i := k; i < q.m; i++ {
				s += q.qr.At(i, k) * col[i]
			}
			s = -s / q.qr.At(k, k)
			for i := k; i < q.m; i++ {
				col[i] += s * q.qr.At(i, k)
			}
		}
		for i := 0; i < q.m; i++ {
			qm.Set(i, j, col[i])
		}
	}
	return qm
}
