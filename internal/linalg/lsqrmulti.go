package linalg

import (
	"fmt"
	"math"
)

// LSQRMultiOptions tune a blocked LSQRMulti solve. The tolerance and
// iteration fields mean exactly what they mean on LSQROptions; they
// apply to every system of the block.
type LSQRMultiOptions struct {
	// Damp, ATol, BTol, MaxIter: see LSQROptions.
	Damp       float64
	ATol, BTol float64
	MaxIter    int
	// X0, when non-nil, warm-starts every system of the block from the
	// same iterate (length Cols): system c iterates on the residual
	// system A·z = b_c − A·x0 and returns x0 + z, exactly as
	// LSQROptions.X0 does for a single solve.
	X0 []float64
	// Work, when non-nil, supplies all working storage so steady-state
	// callers allocate nothing per solve. The returned report slice
	// aliases Work; copy it to keep it across solves.
	Work *LSQRMultiWork
}

// LSQRMultiWork holds the working storage of one blocked solve for
// reuse. The zero value is ready to use: buffers grow on demand and are
// fully overwritten before being read, so reuse cannot change results.
// Not safe for concurrent use; give each worker its own.
type LSQRMultiWork struct {
	// Interleaved k-wide iterate vectors.
	x, u, v, w []float64
	// Per-lane scalar state.
	lane [][]float64
	act  []bool
	upd  []bool
	reps []LSQRReport
}

// Indices into LSQRMultiWork.lane. Each entry is one per-lane scalar of
// the standalone LSQR recurrence.
const (
	lnAlpha = iota
	lnBeta
	lnBnorm
	lnRhobar
	lnPhibar
	lnAnorm
	lnXxnorm
	lnXnorm
	lnRes2
	lnCs2
	lnSn2
	lnZ
	lnT1
	lnT2
	lnInv
	lnMax
	lnSsq
	lnCount
)

func (wk *LSQRMultiWork) prepare(m, n, k int) {
	wk.x = grow(wk.x, n*k)
	wk.u = grow(wk.u, m*k)
	wk.v = grow(wk.v, n*k)
	wk.w = grow(wk.w, n*k)
	if len(wk.lane) < lnCount {
		wk.lane = make([][]float64, lnCount)
	}
	for i := range wk.lane {
		wk.lane[i] = grow(wk.lane[i], k)
	}
	if cap(wk.act) < k {
		wk.act = make([]bool, k)
		wk.upd = make([]bool, k)
	}
	wk.act = wk.act[:k]
	wk.upd = wk.upd[:k]
	if cap(wk.reps) < k {
		wk.reps = make([]LSQRReport, k)
	}
	wk.reps = wk.reps[:k]
	for c := range wk.reps {
		wk.reps[c] = LSQRReport{}
	}
}

// LSQRMulti solves k independent systems min ‖A·x_c − b_c‖² +
// damp²·‖x_c‖² that share one sparse operator, by running k standalone
// LSQR recurrences in lockstep over blocked mat-vec kernels. System c's
// solution, report, and iteration count are bit-identical to
// LSQR(a, bs[c], ...) with the same options — the blocked kernels
// accumulate every per-system value in the same order as the vector
// kernels, and each system stops by its own stopping test, after which
// its solution is frozen while the others run on. What the blocking
// buys is throughput: one traversal of the CSR index structure serves
// all still-running systems, which is the dominant cost of a sparse
// LSQR iteration.
//
// bs holds the k right-hand sides (each length Rows); the solutions are
// written to dst (k slices, each length Cols). The returned reports
// alias opts.Work when it is supplied.
func LSQRMulti(a *Sparse, bs, dst [][]float64, opts LSQRMultiOptions) ([]LSQRReport, error) {
	m, n := a.Rows(), a.Cols()
	k := len(bs)
	if len(dst) != k {
		return nil, fmt.Errorf("%w: LSQRMulti with %d systems and %d outputs", ErrShape, k, len(dst))
	}
	if k == 0 {
		return nil, nil
	}
	for c := range bs {
		if len(bs[c]) != m {
			return nil, fmt.Errorf("%w: LSQRMulti A %dx%d with b[%d] of %d", ErrShape, m, n, c, len(bs[c]))
		}
		if len(dst[c]) != n {
			return nil, fmt.Errorf("%w: LSQRMulti A %dx%d with dst[%d] of %d", ErrShape, m, n, c, len(dst[c]))
		}
	}
	if opts.X0 != nil && len(opts.X0) != n {
		return nil, fmt.Errorf("%w: LSQRMulti A %dx%d with x0 of %d", ErrShape, m, n, len(opts.X0))
	}
	atol, btol := opts.ATol, opts.BTol
	if atol <= 0 {
		atol = 1e-13
	}
	if btol <= 0 {
		btol = 1e-13
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * (m + n)
	}
	damp := opts.Damp

	wk := opts.Work
	if wk == nil {
		wk = &LSQRMultiWork{}
	}
	wk.prepare(m, n, k)
	x, u, v, w := wk.x[:n*k], wk.u[:m*k], wk.v[:n*k], wk.w[:n*k]
	ln := wk.lane
	alpha, beta, bnorm := ln[lnAlpha], ln[lnBeta], ln[lnBnorm]
	rhobar, phibar := ln[lnRhobar], ln[lnPhibar]
	anorm, xxnorm, xnorm := ln[lnAnorm], ln[lnXxnorm], ln[lnXnorm]
	res2, cs2, sn2, zz := ln[lnRes2], ln[lnCs2], ln[lnSn2], ln[lnZ]
	t1, t2, inv, maxs, ssq := ln[lnT1], ln[lnT2], ln[lnInv], ln[lnMax], ln[lnSsq]
	active, upd := wk.act, wk.upd
	reps := wk.reps
	tr := a.transpose()

	// Initial iterate and residual u = b − A·x0 (cold: x = 0, u = b),
	// lane by lane in the element order of the standalone path.
	if opts.X0 != nil {
		for j := 0; j < n; j++ {
			xj := opts.X0[j]
			xs := x[j*k : j*k+k]
			for c := range xs {
				xs[c] = xj
			}
		}
		mulGatherInitU(a, x, u, bs, k)
		for c := range bs {
			bnorm[c] = Norm2(bs[c])
		}
	} else {
		for j := range x {
			x[j] = 0
		}
		for i := 0; i < m; i++ {
			us := u[i*k : i*k+k]
			for c := range us {
				us[c] = bs[c][i]
			}
		}
	}
	normLanes(u, m, k, maxs, ssq, beta)
	if opts.X0 == nil {
		copy(bnorm, beta)
	}

	live := 0
	for c := 0; c < k; c++ {
		active[c] = true
		switch {
		case beta[c] == 0:
			// b − A·x0 = 0 (for a cold start, b = 0): x is exact.
			reps[c].Converged = true
			snapshotLane(dst[c], x, c, k)
			active[c] = false
		case opts.X0 != nil && beta[c] <= btol*bnorm[c]:
			// The warm iterate already satisfies the residual tolerance.
			reps[c].ResidualNorm = beta[c]
			reps[c].Converged = true
			snapshotLane(dst[c], x, c, k)
			active[c] = false
		default:
			live++
		}
		if active[c] {
			inv[c] = 1 / beta[c]
		} else {
			inv[c] = 1
		}
	}
	if live == 0 {
		return reps, nil
	}
	scaleLanes(u, inv)
	// v = Aᵀ·u, assigned directly (the standalone init path).
	tmulGatherVUpdate(tr, u, v, nil, nil, maxs, k, true)
	ssqLanes(v, n, k, maxs, ssq, alpha)
	for c := 0; c < k; c++ {
		if active[c] && alpha[c] == 0 {
			// Aᵀ·(b − A·x) = 0: x is already least-squares optimal.
			reps[c].ResidualNorm = beta[c]
			reps[c].Converged = true
			snapshotLane(dst[c], x, c, k)
			active[c] = false
			live--
		}
		if active[c] {
			inv[c] = 1 / alpha[c]
		} else {
			inv[c] = 1
		}
	}
	if live == 0 {
		return reps, nil
	}
	scaleLanes(v, inv)
	copy(w, v)

	for c := 0; c < k; c++ {
		rhobar[c] = alpha[c]
		phibar[c] = beta[c]
		anorm[c], xxnorm[c], xnorm[c] = 0, 0, 0
		res2[c] = 0
		cs2[c], sn2[c], zz[c] = -1, 0, 0
	}

	for iter := 1; iter <= maxIter && live > 0; iter++ {
		for c := 0; c < k; c++ {
			if active[c] {
				reps[c].Iterations = iter
			}
		}
		// β·u = A·v − α·u, fused with the max pass of Norm2(u).
		mulGatherUUpdate(a, v, u, alpha, maxs, k)
		ssqLanes(u, m, k, maxs, ssq, beta)
		for c := 0; c < k; c++ {
			upd[c] = beta[c] > 0
			if upd[c] {
				inv[c] = 1 / beta[c]
			} else {
				inv[c] = 1
			}
		}
		scaleLanes(u, inv)
		// α·v = Aᵀ·u − β·v for lanes with β > 0 (others keep v, α), fused
		// with the max pass of Norm2(v).
		tmulGatherVUpdate(tr, u, v, beta, upd, maxs, k, false)
		ssqLanesMasked(v, n, k, maxs, ssq, alpha, upd)
		for c := 0; c < k; c++ {
			if upd[c] && alpha[c] > 0 {
				inv[c] = 1 / alpha[c]
			} else {
				inv[c] = 1
			}
		}

		// Per-lane rotations and stopping-test scalars — the standalone
		// recurrence verbatim, indexed by lane.
		for c := 0; c < k; c++ {
			if !active[c] {
				t1[c], t2[c] = 0, 0
				continue
			}
			anorm[c] = math.Hypot(anorm[c], math.Hypot(alpha[c], math.Hypot(beta[c], damp)))

			rhobar1 := rhobar[c]
			psi := 0.0
			if damp > 0 {
				rhobar1 = math.Hypot(rhobar[c], damp)
				c1 := rhobar[c] / rhobar1
				s1 := damp / rhobar1
				psi = s1 * phibar[c]
				phibar[c] = c1 * phibar[c]
			}

			rho := math.Hypot(rhobar1, beta[c])
			cr := rhobar1 / rho
			sr := beta[c] / rho
			theta := sr * alpha[c]
			rhobar[c] = -cr * alpha[c]
			phi := cr * phibar[c]
			phibar[c] = sr * phibar[c]

			t1[c] = phi / rho
			t2[c] = -theta / rho

			res2[c] = math.Hypot(res2[c], psi)
			rnorm := math.Hypot(res2[c], phibar[c])
			arnorm := alpha[c] * math.Abs(sr*phi)
			delta := sn2[c] * rho
			gambar := -cs2[c] * rho
			rhs := phi - delta*zz[c]
			if gambar != 0 {
				zbar := rhs / gambar
				xnorm[c] = math.Sqrt(xxnorm[c] + zbar*zbar)
			}
			gamma := math.Hypot(gambar, theta)
			if gamma > 0 {
				cs2[c] = gambar / gamma
				sn2[c] = theta / gamma
				zz[c] = rhs / gamma
				xxnorm[c] += zz[c] * zz[c]
			}

			reps[c].ResidualNorm = rnorm
			reps[c].ATResidualNorm = arnorm
		}

		// x += t1·w; w = v + t2·w, with v's deferred 1/α scaling applied
		// element-by-element just before use (bit-identical to scaling v
		// in its own pass first).
		xwUpdateLanes(x, w, v, inv, t1, t2)

		for c := 0; c < k; c++ {
			if !active[c] {
				continue
			}
			rnorm := reps[c].ResidualNorm
			test1 := rnorm / bnorm[c]
			test2 := 0.0
			if anorm[c] > 0 && rnorm > 0 {
				test2 = reps[c].ATResidualNorm / (anorm[c] * rnorm)
			}
			done := test1 <= btol+atol*anorm[c]*xnorm[c]/bnorm[c] || test2 <= atol
			if done {
				reps[c].Converged = true
			} else if alpha[c] == 0 || beta[c] == 0 {
				// Bidiagonalization breakdown: the Krylov space is
				// exhausted and x is exact over it.
				reps[c].Converged = true
				done = true
			}
			if done {
				snapshotLane(dst[c], x, c, k)
				active[c] = false
				live--
			}
		}
	}
	for c := 0; c < k; c++ {
		if active[c] {
			snapshotLane(dst[c], x, c, k)
			active[c] = false
		}
	}
	return reps, nil
}

// snapshotLane copies lane c of the interleaved k-wide vector src into
// the contiguous dst.
func snapshotLane(dst, src []float64, c, k int) {
	for j := range dst {
		dst[j] = src[j*k+c]
	}
}

// scaleLanes multiplies lane c of the interleaved vector by s[c]. A
// lane factor of exactly 1 leaves the lane bit-identical, so callers
// skip lanes by passing 1.
func scaleLanes(v []float64, s []float64) {
	k := len(s)
	for o := 0; o < len(v); o += k {
		vs := v[o : o+k]
		for c, f := range s {
			vs[c] *= f
		}
	}
}

// normLanes computes norm[c] = Norm2 of lane c (length rows) of the
// interleaved vector, with Norm2's exact two-pass scaled algorithm per
// lane. maxs and ssq are lane scratch.
func normLanes(v []float64, rows, k int, maxs, ssq, norm []float64) {
	for c := 0; c < k; c++ {
		maxs[c] = 0
	}
	for o := 0; o < rows*k; o += k {
		vs := v[o : o+k]
		for c, xv := range vs {
			if a := math.Abs(xv); a > maxs[c] {
				maxs[c] = a
			}
		}
	}
	ssqLanes(v, rows, k, maxs, ssq, norm)
}

// ssqLanes finishes a lane norm given the lane maxima: norm[c] =
// maxs[c]·sqrt(Σ (x/maxs[c])²), or 0 when the lane is all zero.
func ssqLanes(v []float64, rows, k int, maxs, ssq, norm []float64) {
	for c := 0; c < k; c++ {
		ssq[c] = 0
	}
	for o := 0; o < rows*k; o += k {
		vs := v[o : o+k]
		for c, xv := range vs {
			if mx := maxs[c]; mx > 0 {
				t := xv / mx
				ssq[c] += t * t
			}
		}
	}
	for c := 0; c < k; c++ {
		if maxs[c] == 0 {
			norm[c] = 0
		} else {
			norm[c] = maxs[c] * math.Sqrt(ssq[c])
		}
	}
}

// ssqLanesMasked is ssqLanes restricted to lanes with upd[c] set;
// other lanes keep their previous norm value untouched.
func ssqLanesMasked(v []float64, rows, k int, maxs, ssq, norm []float64, upd []bool) {
	for c := 0; c < k; c++ {
		ssq[c] = 0
	}
	for o := 0; o < rows*k; o += k {
		vs := v[o : o+k]
		for c, xv := range vs {
			if !upd[c] {
				continue
			}
			if mx := maxs[c]; mx > 0 {
				t := xv / mx
				ssq[c] += t * t
			}
		}
	}
	for c := 0; c < k; c++ {
		if !upd[c] {
			continue
		}
		if maxs[c] == 0 {
			norm[c] = 0
		} else {
			norm[c] = maxs[c] * math.Sqrt(ssq[c])
		}
	}
}

// xwUpdateLanes performs the fused end-of-iteration vector update for
// all lanes: v ← v·inv (the deferred 1/α normalization), then
// x += t1·w and w = v + t2·w, element order identical to the standalone
// solver's separate ScaleVec and update loops.
func xwUpdateLanes(x, w, v []float64, inv, t1, t2 []float64) {
	k := len(inv)
	for o := 0; o < len(x); o += k {
		xs := x[o : o+k]
		ws := w[o : o+k]
		vs := v[o : o+k]
		for c := range xs {
			vi := vs[c] * inv[c]
			vs[c] = vi
			wi := ws[c]
			xs[c] += t1[c] * wi
			ws[c] = vi + t2[c]*wi
		}
	}
}

// mulGatherInitU computes u = b − A·x for the warm-start init, fusing
// the subtraction into the row gather: lane c of row i accumulates
// (A·x)_i in CSR nonzero order, then u[i·k+c] = bs[c][i] − acc.
func mulGatherInitU(a *Sparse, x, u []float64, bs [][]float64, k int) {
	for i := 0; i < a.rows; i++ {
		row := a.colIdx[a.rowPtr[i]:a.rowPtr[i+1]]
		vals := a.val[a.rowPtr[i]:a.rowPtr[i+1]]
		us := u[i*k : i*k+k]
		for c := 0; c < k; c++ {
			var acc float64
			for p, j := range row {
				acc += vals[p] * x[j*k+c]
			}
			us[c] = bs[c][i] - acc
		}
	}
}

// mulGatherUUpdate computes u = A·v − α·u fused into the row gather,
// folding in the first (max) pass of Norm2(u): per lane, the new u
// entries and the running max of their magnitudes are produced in the
// same element order as the standalone MulVecTo + update + Norm2
// sequence.
func mulGatherUUpdate(a *Sparse, v, u []float64, alpha, maxs []float64, k int) {
	for c := 0; c < k; c++ {
		maxs[c] = 0
	}
	for i := 0; i < a.rows; i++ {
		row := a.colIdx[a.rowPtr[i]:a.rowPtr[i+1]]
		vals := a.val[a.rowPtr[i]:a.rowPtr[i+1]]
		us := u[i*k : i*k+k]
		c := 0
		for ; c+8 <= k; c += 8 {
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			for p, j := range row {
				vv := vals[p]
				xb := v[j*k+c : j*k+c+8 : j*k+c+8]
				a0 += vv * xb[0]
				a1 += vv * xb[1]
				a2 += vv * xb[2]
				a3 += vv * xb[3]
				a4 += vv * xb[4]
				a5 += vv * xb[5]
				a6 += vv * xb[6]
				a7 += vv * xb[7]
			}
			a0 -= alpha[c] * us[c]
			a1 -= alpha[c+1] * us[c+1]
			a2 -= alpha[c+2] * us[c+2]
			a3 -= alpha[c+3] * us[c+3]
			a4 -= alpha[c+4] * us[c+4]
			a5 -= alpha[c+5] * us[c+5]
			a6 -= alpha[c+6] * us[c+6]
			a7 -= alpha[c+7] * us[c+7]
			us[c], us[c+1], us[c+2], us[c+3] = a0, a1, a2, a3
			us[c+4], us[c+5], us[c+6], us[c+7] = a4, a5, a6, a7
			foldMax(maxs, c, a0, a1, a2, a3)
			foldMax(maxs, c+4, a4, a5, a6, a7)
		}
		for ; c+4 <= k; c += 4 {
			var a0, a1, a2, a3 float64
			for p, j := range row {
				vv := vals[p]
				xb := v[j*k+c : j*k+c+4 : j*k+c+4]
				a0 += vv * xb[0]
				a1 += vv * xb[1]
				a2 += vv * xb[2]
				a3 += vv * xb[3]
			}
			a0 -= alpha[c] * us[c]
			a1 -= alpha[c+1] * us[c+1]
			a2 -= alpha[c+2] * us[c+2]
			a3 -= alpha[c+3] * us[c+3]
			us[c], us[c+1], us[c+2], us[c+3] = a0, a1, a2, a3
			foldMax(maxs, c, a0, a1, a2, a3)
		}
		for ; c < k; c++ {
			var acc float64
			for p, j := range row {
				acc += vals[p] * v[j*k+c]
			}
			acc -= alpha[c] * us[c]
			us[c] = acc
			if ab := math.Abs(acc); ab > maxs[c] {
				maxs[c] = ab
			}
		}
	}
}

// vUpdateLane applies v = acc − β·v plus the max fold to one lane of a
// gather tile, honoring the update mask.
func vUpdateLane(vs, beta []float64, upd []bool, maxs []float64, c int, acc float64) {
	if !upd[c] {
		return
	}
	acc -= beta[c] * vs[c]
	vs[c] = acc
	if ab := math.Abs(acc); ab > maxs[c] {
		maxs[c] = ab
	}
}

// foldMax folds four lane magnitudes into the running lane maxima.
func foldMax(maxs []float64, c int, a0, a1, a2, a3 float64) {
	if ab := math.Abs(a0); ab > maxs[c] {
		maxs[c] = ab
	}
	if ab := math.Abs(a1); ab > maxs[c+1] {
		maxs[c+1] = ab
	}
	if ab := math.Abs(a2); ab > maxs[c+2] {
		maxs[c+2] = ab
	}
	if ab := math.Abs(a3); ab > maxs[c+3] {
		maxs[c+3] = ab
	}
}

// tmulGatherVUpdate computes v = Aᵀ·u − β·v over the cached transpose,
// fused into the gather, folding in the first (max) pass of Norm2(v)
// for the lanes it updates. With assign set (the init path) every lane
// is assigned v = Aᵀ·u directly; otherwise only lanes with upd[c] set
// are updated (β > 0), and the rest keep their previous v — and their
// previous norm state — bit for bit, as the standalone solver leaves v
// and α untouched when β = 0. The arithmetic per lane matches
// TMulVecTo + the standalone update loop exactly; see TMulMatTo for
// why the gather needs no zero-skip to match TMulVecTo.
func tmulGatherVUpdate(tr *Sparse, u, v []float64, beta []float64, upd []bool, maxs []float64, k int, assign bool) {
	for c := 0; c < k; c++ {
		if assign || upd[c] {
			maxs[c] = 0
		}
	}
	for i := 0; i < tr.rows; i++ {
		row := tr.colIdx[tr.rowPtr[i]:tr.rowPtr[i+1]]
		vals := tr.val[tr.rowPtr[i]:tr.rowPtr[i+1]]
		vs := v[i*k : i*k+k]
		c := 0
		for ; c+8 <= k; c += 8 {
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			for p, j := range row {
				vv := vals[p]
				xb := u[j*k+c : j*k+c+8 : j*k+c+8]
				a0 += xb[0] * vv
				a1 += xb[1] * vv
				a2 += xb[2] * vv
				a3 += xb[3] * vv
				a4 += xb[4] * vv
				a5 += xb[5] * vv
				a6 += xb[6] * vv
				a7 += xb[7] * vv
			}
			if assign {
				vs[c], vs[c+1], vs[c+2], vs[c+3] = a0, a1, a2, a3
				vs[c+4], vs[c+5], vs[c+6], vs[c+7] = a4, a5, a6, a7
				foldMax(maxs, c, a0, a1, a2, a3)
				foldMax(maxs, c+4, a4, a5, a6, a7)
				continue
			}
			vUpdateLane(vs, beta, upd, maxs, c, a0)
			vUpdateLane(vs, beta, upd, maxs, c+1, a1)
			vUpdateLane(vs, beta, upd, maxs, c+2, a2)
			vUpdateLane(vs, beta, upd, maxs, c+3, a3)
			vUpdateLane(vs, beta, upd, maxs, c+4, a4)
			vUpdateLane(vs, beta, upd, maxs, c+5, a5)
			vUpdateLane(vs, beta, upd, maxs, c+6, a6)
			vUpdateLane(vs, beta, upd, maxs, c+7, a7)
		}
		for ; c+4 <= k; c += 4 {
			var a0, a1, a2, a3 float64
			for p, j := range row {
				vv := vals[p]
				xb := u[j*k+c : j*k+c+4 : j*k+c+4]
				a0 += xb[0] * vv
				a1 += xb[1] * vv
				a2 += xb[2] * vv
				a3 += xb[3] * vv
			}
			if assign {
				vs[c], vs[c+1], vs[c+2], vs[c+3] = a0, a1, a2, a3
				foldMax(maxs, c, a0, a1, a2, a3)
			} else {
				if upd[c] {
					a0 -= beta[c] * vs[c]
					vs[c] = a0
					if ab := math.Abs(a0); ab > maxs[c] {
						maxs[c] = ab
					}
				}
				if upd[c+1] {
					a1 -= beta[c+1] * vs[c+1]
					vs[c+1] = a1
					if ab := math.Abs(a1); ab > maxs[c+1] {
						maxs[c+1] = ab
					}
				}
				if upd[c+2] {
					a2 -= beta[c+2] * vs[c+2]
					vs[c+2] = a2
					if ab := math.Abs(a2); ab > maxs[c+2] {
						maxs[c+2] = ab
					}
				}
				if upd[c+3] {
					a3 -= beta[c+3] * vs[c+3]
					vs[c+3] = a3
					if ab := math.Abs(a3); ab > maxs[c+3] {
						maxs[c+3] = ab
					}
				}
			}
		}
		for ; c < k; c++ {
			var acc float64
			for p, j := range row {
				acc += u[j*k+c] * vals[p]
			}
			if assign {
				vs[c] = acc
			} else if upd[c] {
				acc -= beta[c] * vs[c]
				vs[c] = acc
			} else {
				continue
			}
			if ab := math.Abs(acc); ab > maxs[c] {
				maxs[c] = ab
			}
		}
	}
}
