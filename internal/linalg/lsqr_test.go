package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// relDiff returns ‖a − b‖ / max(‖b‖, 1e-30).
func relDiff(a, b []float64) float64 {
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	den := Norm2(b)
	if den < 1e-30 {
		den = 1e-30
	}
	return Norm2(d) / den
}

// TestLSQRAgreesWithSolveMinNorm is the PR's core property test: on
// random sparse systems of every shape class (overdetermined,
// underdetermined, square, and explicitly rank-deficient via duplicated
// columns), LSQR must reproduce the dense-SVD minimum-norm least-squares
// solution to 1e-8 relative.
func TestLSQRAgreesWithSolveMinNorm(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		m := 2 + r.Intn(30)
		n := 2 + r.Intn(30)
		a := randomSparseMatrix(r, m, n, 0.25)
		if trial%4 == 0 && n >= 2 {
			// Force rank deficiency: duplicate a column.
			src, dup := r.Intn(n), r.Intn(n)
			for i := 0; i < m; i++ {
				a.Set(i, dup, a.At(i, src))
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		want, err := SolveMinNorm(a, b, 0)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		got, rep, err := LSQR(SparseFromDense(a), b, LSQROptions{})
		if err != nil {
			t.Fatalf("trial %d: lsqr: %v", trial, err)
		}
		if !rep.Converged {
			t.Fatalf("trial %d (%dx%d): LSQR did not converge in %d iterations", trial, m, n, rep.Iterations)
		}
		// Compare through the residual map A·x (identical for every LS
		// solution) and directly (identical because both are minimum-norm).
		if d := relDiff(got, want); d > 1e-8 {
			t.Fatalf("trial %d (%dx%d): solution rel diff %g > 1e-8", trial, m, n, d)
		}
	}
}

func TestLSQRConsistentSystemExact(t *testing.T) {
	// On a consistent square well-conditioned system LSQR must return the
	// unique solution.
	a, _ := NewMatrixFromRows([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 5},
	})
	xTrue := []float64{1, -2, 3}
	b, _ := a.MulVec(xTrue)
	x, rep, err := LSQR(SparseFromDense(a), b, LSQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("no convergence on a 3x3 SPD system")
	}
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
	if rep.ResidualNorm > 1e-9 {
		t.Errorf("residual norm %g on a consistent system", rep.ResidualNorm)
	}
}

func TestLSQRZeroRHS(t *testing.T) {
	a := randomSparseMatrix(rand.New(rand.NewSource(3)), 6, 4, 0.5)
	x, rep, err := LSQR(SparseFromDense(a), make([]float64, 6), LSQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Iterations != 0 {
		t.Errorf("zero rhs: report %+v", rep)
	}
	for i, v := range x {
		if v != 0 {
			t.Errorf("x[%d] = %g, want 0", i, v)
		}
	}
}

func TestLSQRDampedShrinksSolution(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomSparseMatrix(r, 12, 8, 0.4)
	b := make([]float64, 12)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	s := SparseFromDense(a)
	plain, _, err := LSQR(s, b, LSQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	damped, _, err := LSQR(s, b, LSQROptions{Damp: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(damped) >= Norm2(plain) {
		t.Errorf("damped solution norm %g >= undamped %g", Norm2(damped), Norm2(plain))
	}
}

func TestLSQRShapeError(t *testing.T) {
	a := SparseFromDense(NewMatrix(3, 2))
	if _, _, err := LSQR(a, make([]float64, 5), LSQROptions{}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

// TestLSQRZeroX0MatchesCold: an all-zero warm-start iterate is the cold
// start, bit for bit — solution and report — as the X0 field doc
// promises.
func TestLSQRZeroX0MatchesCold(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		m, n := 4+r.Intn(24), 4+r.Intn(24)
		a := SparseFromDense(randomSparseMatrix(r, m, n, 0.3))
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		cold, coldRep, err := LSQR(a, b, LSQROptions{})
		if err != nil {
			t.Fatal(err)
		}
		warm, warmRep, err := LSQR(a, b, LSQROptions{X0: make([]float64, n)})
		if err != nil {
			t.Fatal(err)
		}
		if coldRep != warmRep {
			t.Fatalf("trial %d: reports %+v vs %+v", trial, coldRep, warmRep)
		}
		for j := range cold {
			if math.Float64bits(cold[j]) != math.Float64bits(warm[j]) {
				t.Fatalf("trial %d: zero x0 diverged at x[%d]: %g vs %g", trial, j, warm[j], cold[j])
			}
		}
	}
}

// TestLSQRWarmReentryInstant: feeding a converged solution back in as X0
// must exit before the first iteration, unchanged — the property the
// warm-started series path leans on when consecutive bins carry nearly
// identical corrections.
func TestLSQRWarmReentryInstant(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 5},
	})
	b, _ := a.MulVec([]float64{1, -2, 3})
	s := SparseFromDense(a)
	x, rep, err := LSQR(s, b, LSQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("cold solve did not converge")
	}
	x0 := append([]float64(nil), x...)
	x2, rep2, err := LSQR(s, b, LSQROptions{X0: x0})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Converged || rep2.Iterations != 0 {
		t.Fatalf("re-entry report %+v, want 0 iterations converged", rep2)
	}
	for j := range x0 {
		if math.Float64bits(x2[j]) != math.Float64bits(x0[j]) {
			t.Fatalf("re-entry moved x[%d]: %g vs %g", j, x2[j], x0[j])
		}
	}
}

// TestLSQRWarmConvergesToSameResidual: from an arbitrary (bad) starting
// iterate the warm solve still reaches the cold solve's residual map —
// A·x agrees — even though the solution itself may differ by a
// null-space component (warm returns x0 + min-norm of the residual
// system, not the min-norm solution of the original).
func TestLSQRWarmConvergesToSameResidual(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		m, n := 6+r.Intn(20), 6+r.Intn(20)
		a := SparseFromDense(randomSparseMatrix(r, m, n, 0.3))
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = r.NormFloat64()
		}
		cold, _, err := LSQR(a, b, LSQROptions{})
		if err != nil {
			t.Fatal(err)
		}
		warm, rep, err := LSQR(a, b, LSQROptions{X0: x0})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Converged {
			t.Fatalf("trial %d: warm solve did not converge: %+v", trial, rep)
		}
		ac := make([]float64, m)
		aw := make([]float64, m)
		a.MulVecTo(ac, cold)
		a.MulVecTo(aw, warm)
		if d := relDiff(aw, ac); d > 1e-8 {
			t.Fatalf("trial %d: residual maps differ by %g", trial, d)
		}
	}
}

// TestLSQRX0ShapeError: a mis-sized warm-start iterate is an ErrShape.
func TestLSQRX0ShapeError(t *testing.T) {
	a := SparseFromDense(NewMatrix(3, 2))
	if _, _, err := LSQR(a, make([]float64, 3), LSQROptions{X0: make([]float64, 5)}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

func TestLSQRDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := SparseFromDense(randomSparseMatrix(r, 20, 15, 0.2))
	b := make([]float64, 20)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x1, rep1, err := LSQR(a, b, LSQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	x2, rep2, err := LSQR(a, b, LSQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep2 {
		t.Errorf("reports differ: %+v vs %+v", rep1, rep2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Errorf("x[%d] differs bitwise: %g vs %g", i, x1[i], x2[i])
		}
	}
}
