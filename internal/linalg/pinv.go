package linalg

// PInv returns the Moore-Penrose pseudo-inverse of a, computed from the
// Jacobi SVD with singular values below rtol * s_max treated as zero.
// A non-positive rtol selects a machine-precision default.
func PInv(a *Matrix, rtol float64) (*Matrix, error) {
	d, err := NewSVD(a)
	if err != nil {
		return nil, err
	}
	if rtol <= 0 {
		rtol = 1e-12
	}
	m, n := a.Rows(), a.Cols()
	out := NewMatrix(n, m)
	if len(d.S) == 0 || d.S[0] == 0 {
		return out, nil // pseudo-inverse of the zero matrix is zero
	}
	cut := rtol * d.S[0]
	// A⁺ = V · diag(1/s) · Uᵀ, summing rank-1 terms v_k (1/s_k) u_kᵀ.
	for k, s := range d.S {
		if s <= cut {
			continue
		}
		inv := 1 / s
		for i := 0; i < n; i++ {
			vik := d.V.At(i, k) * inv
			if vik == 0 {
				continue
			}
			row := out.Row(i)
			for j := 0; j < m; j++ {
				row[j] += vik * d.U.At(j, k)
			}
		}
	}
	return out, nil
}

// SolveMinNorm returns the minimum-norm least-squares solution of
// A·x = b, i.e. A⁺·b, without forming A⁺ explicitly.
func SolveMinNorm(a *Matrix, b []float64, rtol float64) ([]float64, error) {
	d, err := NewSVD(a)
	if err != nil {
		return nil, err
	}
	if len(b) != a.Rows() {
		return nil, ErrShape
	}
	if rtol <= 0 {
		rtol = 1e-12
	}
	n := a.Cols()
	x := make([]float64, n)
	if len(d.S) == 0 || d.S[0] == 0 {
		return x, nil
	}
	cut := rtol * d.S[0]
	for k, s := range d.S {
		if s <= cut {
			continue
		}
		// coefficient = (u_k · b) / s_k
		var ub float64
		for j := 0; j < len(b); j++ {
			ub += d.U.At(j, k) * b[j]
		}
		coef := ub / s
		for i := 0; i < n; i++ {
			x[i] += coef * d.V.At(i, k)
		}
	}
	return x, nil
}
