package linalg

import "fmt"

// LstSq returns the least-squares solution x minimizing ||A·x - b||₂ for a
// full-column-rank A via Householder QR. It falls back to the minimum-norm
// SVD solution when A is rank deficient, so it never fails on shape-valid
// input (only on an internal SVD non-convergence, which is reported).
func LstSq(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("%w: LstSq A %dx%d with b of %d", ErrShape, a.Rows(), a.Cols(), len(b))
	}
	if a.Rows() >= a.Cols() {
		qr, err := NewQR(a)
		if err == nil && qr.FullRank() {
			return qr.Solve(b)
		}
	}
	return SolveMinNorm(a, b, 0)
}

// SolveSPD solves the symmetric positive-definite system A·x = b using
// Cholesky with an automatic tiny-ridge retry: the go-to path for normal
// equations arising in this repository's fitters.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	scale := a.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	ch, err := NewCholeskyRidge(a, 1e-12*scale)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b)
}

// NNLSClamp returns a non-negative approximate least-squares solution by
// solving the unconstrained problem and then iteratively clamping negative
// coordinates to zero and re-solving on the active set. This is not a full
// Lawson-Hanson NNLS, but for the well-conditioned systems produced by the
// IC fitters (diagonally dominant normal matrices, mostly interior optima)
// it converges in one or two rounds and is orders of magnitude cheaper.
func NNLSClamp(ata *Matrix, atb []float64, maxRounds int) ([]float64, error) {
	n := ata.Rows()
	if ata.Cols() != n || len(atb) != n {
		return nil, fmt.Errorf("%w: NNLSClamp with AtA %dx%d, Atb %d", ErrShape, ata.Rows(), ata.Cols(), len(atb))
	}
	if maxRounds <= 0 {
		maxRounds = 4
	}
	active := make([]bool, n) // true = clamped at zero
	x, err := SolveSPD(ata, atb)
	if err != nil {
		return nil, err
	}
	for round := 0; round < maxRounds; round++ {
		anyNeg := false
		for i, v := range x {
			if v < 0 {
				active[i] = true
				anyNeg = true
			}
		}
		if !anyNeg {
			return x, nil
		}
		// Re-solve the reduced system over the free coordinates.
		free := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !active[i] {
				free = append(free, i)
			}
		}
		if len(free) == 0 {
			return make([]float64, n), nil
		}
		sub := NewMatrix(len(free), len(free))
		rhs := make([]float64, len(free))
		for a2, i := range free {
			rhs[a2] = atb[i]
			for b2, j := range free {
				sub.Set(a2, b2, ata.At(i, j))
			}
		}
		xs, err := SolveSPD(sub, rhs)
		if err != nil {
			return nil, err
		}
		x = make([]float64, n)
		for a2, i := range free {
			x[i] = xs[a2]
		}
	}
	// Final safety clamp after the round budget.
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x, nil
}
