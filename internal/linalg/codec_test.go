package linalg

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// sparseEqualBitwise reports whether two CSR matrices are identical in
// stored form: same shape and the same (rowPtr, colIdx, val) arrays bit
// for bit — the equality a store round trip must preserve so every
// downstream accumulation order survives serialization.
func sparseEqualBitwise(a, b *Sparse) bool {
	if a.rows != b.rows || a.cols != b.cols || len(a.val) != len(b.val) {
		return false
	}
	for i := range a.rowPtr {
		if a.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for k := range a.val {
		if a.colIdx[k] != b.colIdx[k] || a.val[k] != b.val[k] {
			return false
		}
	}
	return true
}

// TestSparseCodecRoundTrip: encode→decode reproduces the matrix bitwise
// across random shapes and fills, including empty rows, empty matrices
// and negative values.
func TestSparseCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		m, n := 1+r.Intn(30), 1+r.Intn(30)
		fill := []float64{0, 0.05, 0.2, 0.9}[trial%4]
		a := randomSparseMatrix(r, m, n, fill)
		// Mix in negative values: the codec must be sign-faithful even
		// though routing matrices are nonnegative.
		if trial%3 == 0 {
			data := a.Data()
			for i := range data {
				if data[i] != 0 && r.Intn(2) == 0 {
					data[i] = -data[i]
				}
			}
		}
		s := SparseFromDense(a)
		enc := s.AppendBinary(nil)
		if len(enc) != s.EncodedLen() {
			t.Fatalf("trial %d: encoded %d bytes, EncodedLen says %d", trial, len(enc), s.EncodedLen())
		}
		back, err := DecodeSparse(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !sparseEqualBitwise(s, back) {
			t.Fatalf("trial %d: decoded matrix differs from original", trial)
		}
		// The encoding is canonical: re-encoding the decoded matrix
		// reproduces the bytes.
		if !bytes.Equal(enc, back.AppendBinary(nil)) {
			t.Fatalf("trial %d: re-encoded bytes differ", trial)
		}
	}
}

// TestSparseCodecAppend: AppendBinary extends the caller's buffer
// in place rather than replacing it.
func TestSparseCodecAppend(t *testing.T) {
	s, err := NewSparse(2, 2, []Coord{{Row: 0, Col: 1, Val: 3}})
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("head")
	enc := s.AppendBinary(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatalf("AppendBinary dropped the existing buffer prefix")
	}
	back, err := DecodeSparse(enc[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !sparseEqualBitwise(s, back) {
		t.Fatal("decoded matrix differs after prefixed append")
	}
}

// TestSparseDecodeRejectsTruncation: every proper prefix of a valid
// encoding fails with ErrDecode — truncation can never misparse or
// panic.
func TestSparseDecodeRejectsTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := SparseFromDense(randomSparseMatrix(r, 7, 9, 0.3))
	enc := s.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeSparse(enc[:cut]); !errors.Is(err, ErrDecode) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrDecode", cut, len(enc), err)
		}
	}
	if _, err := DecodeSparse(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrDecode) {
		t.Fatalf("trailing byte: err = %v, want ErrDecode", err)
	}
}

// TestSparseDecodeRejectsCorruption: single bit flips anywhere in the
// encoding either fail with ErrDecode or decode into some matrix — but
// never panic and never return a structurally invalid CSR. (A flip in
// the value section legitimately yields a different valid matrix; the
// store layer's checksums exist to catch those.)
func TestSparseDecodeRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	s := SparseFromDense(randomSparseMatrix(r, 6, 8, 0.25))
	enc := s.AppendBinary(nil)
	for pos := 0; pos < len(enc); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 1 << bit
			back, err := DecodeSparse(mut)
			if err != nil {
				if !errors.Is(err, ErrDecode) {
					t.Fatalf("flip %d.%d: err = %v, want ErrDecode", pos, bit, err)
				}
				continue
			}
			// A surviving decode must uphold the CSR invariants: exercise
			// a mat-vec, which would index out of range otherwise.
			x := make([]float64, back.Cols())
			for i := range x {
				x[i] = 1
			}
			if _, err := back.MulVec(x); err != nil {
				t.Fatalf("flip %d.%d: decoded matrix rejects its own shape: %v", pos, bit, err)
			}
		}
	}
}

// TestSparseDecodeRejectsForgedHeaders: headers claiming implausible
// dimensions fail before allocating.
func TestSparseDecodeRejectsForgedHeaders(t *testing.T) {
	s, err := NewSparse(1, 1, []Coord{{Row: 0, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	enc := s.AppendBinary(nil)
	for _, off := range []int{1, 9, 17} { // rows, cols, nnz fields
		mut := append([]byte(nil), enc...)
		for i := 0; i < 8; i++ {
			mut[off+i] = 0xff
		}
		if _, err := DecodeSparse(mut); !errors.Is(err, ErrDecode) {
			t.Fatalf("forged header at %d: err = %v, want ErrDecode", off, err)
		}
	}
	if _, err := DecodeSparse([]byte{99}); !errors.Is(err, ErrDecode) {
		t.Fatalf("wrong version: err = %v, want ErrDecode", err)
	}
}

// FuzzSparseDecode: DecodeSparse is total over arbitrary input — it
// returns (matrix, nil) or (nil, ErrDecode), never panics, and anything
// it accepts survives a canonical re-encode round trip.
func FuzzSparseDecode(f *testing.F) {
	r := rand.New(rand.NewSource(44))
	f.Add([]byte{})
	f.Add([]byte{sparseCodecVersion})
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {8, 8}} {
		s := SparseFromDense(randomSparseMatrix(r, dims[0], dims[1], 0.3))
		f.Add(s.AppendBinary(nil))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSparse(data)
		if err != nil {
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("err = %v, want ErrDecode", err)
			}
			return
		}
		enc := s.AppendBinary(nil)
		back, err := DecodeSparse(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted input: %v", err)
		}
		if !sparseEqualBitwise(s, back) {
			t.Fatal("accepted input does not round-trip")
		}
	})
}
