package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch must panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-14 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %g, want 0", got)
	}
	// Overflow guard: plain sum-of-squares would overflow here.
	big := []float64{1e200, 1e200}
	if got := Norm2(big); math.IsInf(got, 0) || math.Abs(got-1e200*math.Sqrt2) > 1e186 {
		t.Errorf("Norm2 overflow guard failed: %g", got)
	}
}

func TestNorm1Sum(t *testing.T) {
	v := []float64{1, -2, 3}
	if got := Norm1(v); got != 6 {
		t.Errorf("Norm1 = %g, want 6", got)
	}
	if got := Sum(v); got != 2 {
		t.Errorf("Sum = %g, want 2", got)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v, want [7 9]", y)
	}
}

func TestAddSubCloneVec(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if s := AddVec(a, b); s[0] != 4 || s[1] != 7 {
		t.Errorf("AddVec = %v", s)
	}
	if d := SubVec(b, a); d[0] != 2 || d[1] != 3 {
		t.Errorf("SubVec = %v", d)
	}
	c := CloneVec(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("CloneVec must copy")
	}
}

func TestScaleVecMaxAbsDiff(t *testing.T) {
	v := ScaleVec(3, []float64{1, -2})
	if v[0] != 3 || v[1] != -6 {
		t.Errorf("ScaleVec = %v", v)
	}
	if d := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 1}); d != 1 {
		t.Errorf("MaxAbsDiff = %g, want 1", d)
	}
}

// quick property: triangle inequality for Norm2.
func TestTriangleInequalityQuick(t *testing.T) {
	f := func(a, b [5]float64) bool {
		for i := 0; i < 5; i++ {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			if math.Abs(a[i]) > 1e8 || math.Abs(b[i]) > 1e8 {
				return true
			}
		}
		s := AddVec(a[:], b[:])
		return Norm2(s) <= Norm2(a[:])+Norm2(b[:])+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// quick property: Cauchy-Schwarz |a·b| <= ||a||·||b||.
func TestCauchySchwarzQuick(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for i := 0; i < 4; i++ {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			if math.Abs(a[i]) > 1e8 || math.Abs(b[i]) > 1e8 {
				return true
			}
		}
		lhs := math.Abs(Dot(a[:], b[:]))
		rhs := Norm2(a[:]) * Norm2(b[:])
		return lhs <= rhs*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
