package linalg

import (
	"fmt"
	"sort"
)

// Sparse is an immutable sparse matrix in compressed-sparse-row (CSR)
// form. The routing matrices of this repository are 0/1 incidence-like
// matrices with a handful of fractional ECMP entries — a few nonzeros
// per column out of L+2n rows — so CSR mat-vecs cost O(nnz) instead of
// the O(rows·cols) a dense product pays, which is the difference between
// a projection step dominated by the R·x products and one dominated by
// everything else.
//
// A Sparse is safe for concurrent use: it is never mutated after
// construction.
type Sparse struct {
	rows, cols int
	rowPtr     []int     // len rows+1; row i spans [rowPtr[i], rowPtr[i+1])
	colIdx     []int     // len nnz, column index per stored entry
	val        []float64 // len nnz, entry values in row-major order
}

// SparseFromDense builds the CSR form of a dense matrix, storing exactly
// the nonzero entries. The input is not retained.
func SparseFromDense(a *Matrix) *Sparse {
	m, n := a.Rows(), a.Cols()
	s := &Sparse{rows: m, cols: n, rowPtr: make([]int, m+1)}
	nnz := 0
	for i := 0; i < m; i++ {
		for _, v := range a.Row(i) {
			if v != 0 {
				nnz++
			}
		}
	}
	s.colIdx = make([]int, 0, nnz)
	s.val = make([]float64, 0, nnz)
	for i := 0; i < m; i++ {
		for j, v := range a.Row(i) {
			if v != 0 {
				s.colIdx = append(s.colIdx, j)
				s.val = append(s.val, v)
			}
		}
		s.rowPtr[i+1] = len(s.val)
	}
	return s
}

// Coord is one (row, col, value) entry in coordinate (triplet) form, the
// input of NewSparse.
type Coord struct {
	Row, Col int
	Val      float64
}

// NewSparse builds a CSR matrix directly from coordinate-form entries,
// without materializing a dense intermediate — the construction path for
// routing matrices at hundred-node scale, where the dense form alone
// costs hundreds of megabytes. Zero-valued entries are dropped (keeping
// the exact-nnz invariant of SparseFromDense); entries are sorted by
// (row, col), so the stored order — and therefore every accumulation
// order downstream — is independent of input order. Out-of-range and
// duplicate (row, col) entries are errors: the callers of this
// repository never legitimately produce them, and summing duplicates
// would make float results depend on input order.
func NewSparse(rows, cols int, entries []Coord) (*Sparse, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("%w: sparse %dx%d", ErrShape, rows, cols)
	}
	kept := make([]Coord, 0, len(entries))
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrShape, e.Row, e.Col, rows, cols)
		}
		if e.Val != 0 {
			kept = append(kept, e)
		}
	}
	// (row, col) pairs are unique after the duplicate check below, so this
	// comparison is a strict total order and the sort is deterministic.
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].Row != kept[b].Row {
			return kept[a].Row < kept[b].Row
		}
		return kept[a].Col < kept[b].Col
	})
	s := &Sparse{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, len(kept)),
		val:    make([]float64, len(kept)),
	}
	for k, e := range kept {
		if k > 0 && kept[k-1].Row == e.Row && kept[k-1].Col == e.Col {
			return nil, fmt.Errorf("%w: duplicate entry (%d,%d)", ErrShape, e.Row, e.Col)
		}
		s.colIdx[k] = e.Col
		s.val[k] = e.Val
	}
	row := 0
	for k, e := range kept {
		for row < e.Row {
			row++
			s.rowPtr[row] = k
		}
	}
	for row < rows {
		row++
		s.rowPtr[row] = len(kept)
	}
	return s, nil
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored (nonzero) entries.
func (s *Sparse) NNZ() int { return len(s.val) }

// Dense materializes the matrix back into dense row-major form.
func (s *Sparse) Dense() *Matrix {
	out := NewMatrix(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		row := out.Row(i)
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			row[s.colIdx[k]] = s.val[k]
		}
	}
	return out
}

// MulVec returns the matrix-vector product s * x.
func (s *Sparse) MulVec(x []float64) ([]float64, error) {
	if len(x) != s.cols {
		return nil, fmt.Errorf("%w: sparse mulvec %dx%d by vector of %d", ErrShape, s.rows, s.cols, len(x))
	}
	out := make([]float64, s.rows)
	s.MulVecTo(out, x)
	return out, nil
}

// MulVecTo computes dst = s * x without allocating. It panics on shape
// mismatch (the error-returning form is MulVec).
func (s *Sparse) MulVecTo(dst, x []float64) {
	if len(x) != s.cols || len(dst) != s.rows {
		panic(fmt.Sprintf("linalg: sparse MulVecTo %dx%d with x of %d, dst of %d", s.rows, s.cols, len(x), len(dst)))
	}
	for i := 0; i < s.rows; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.val[k] * x[s.colIdx[k]]
		}
		dst[i] = acc
	}
}

// TMulVec returns the product of the transpose, sᵀ * x, without forming
// the transpose.
func (s *Sparse) TMulVec(x []float64) ([]float64, error) {
	if len(x) != s.rows {
		return nil, fmt.Errorf("%w: sparse tmulvec (%dx%d)ᵀ by vector of %d", ErrShape, s.rows, s.cols, len(x))
	}
	out := make([]float64, s.cols)
	s.TMulVecTo(out, x)
	return out, nil
}

// TMulVecTo computes dst = sᵀ * x without allocating. It panics on shape
// mismatch (the error-returning form is TMulVec).
func (s *Sparse) TMulVecTo(dst, x []float64) {
	if len(x) != s.rows || len(dst) != s.cols {
		panic(fmt.Sprintf("linalg: sparse TMulVecTo (%dx%d)ᵀ with x of %d, dst of %d", s.rows, s.cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < s.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			dst[s.colIdx[k]] += xi * s.val[k]
		}
	}
}
