package linalg

import "fmt"

// Sparse is an immutable sparse matrix in compressed-sparse-row (CSR)
// form. The routing matrices of this repository are 0/1 incidence-like
// matrices with a handful of fractional ECMP entries — a few nonzeros
// per column out of L+2n rows — so CSR mat-vecs cost O(nnz) instead of
// the O(rows·cols) a dense product pays, which is the difference between
// a projection step dominated by the R·x products and one dominated by
// everything else.
//
// A Sparse is safe for concurrent use: it is never mutated after
// construction.
type Sparse struct {
	rows, cols int
	rowPtr     []int     // len rows+1; row i spans [rowPtr[i], rowPtr[i+1])
	colIdx     []int     // len nnz, column index per stored entry
	val        []float64 // len nnz, entry values in row-major order
}

// SparseFromDense builds the CSR form of a dense matrix, storing exactly
// the nonzero entries. The input is not retained.
func SparseFromDense(a *Matrix) *Sparse {
	m, n := a.Rows(), a.Cols()
	s := &Sparse{rows: m, cols: n, rowPtr: make([]int, m+1)}
	nnz := 0
	for i := 0; i < m; i++ {
		for _, v := range a.Row(i) {
			if v != 0 {
				nnz++
			}
		}
	}
	s.colIdx = make([]int, 0, nnz)
	s.val = make([]float64, 0, nnz)
	for i := 0; i < m; i++ {
		for j, v := range a.Row(i) {
			if v != 0 {
				s.colIdx = append(s.colIdx, j)
				s.val = append(s.val, v)
			}
		}
		s.rowPtr[i+1] = len(s.val)
	}
	return s
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored (nonzero) entries.
func (s *Sparse) NNZ() int { return len(s.val) }

// Dense materializes the matrix back into dense row-major form.
func (s *Sparse) Dense() *Matrix {
	out := NewMatrix(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		row := out.Row(i)
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			row[s.colIdx[k]] = s.val[k]
		}
	}
	return out
}

// MulVec returns the matrix-vector product s * x.
func (s *Sparse) MulVec(x []float64) ([]float64, error) {
	if len(x) != s.cols {
		return nil, fmt.Errorf("%w: sparse mulvec %dx%d by vector of %d", ErrShape, s.rows, s.cols, len(x))
	}
	out := make([]float64, s.rows)
	s.MulVecTo(out, x)
	return out, nil
}

// MulVecTo computes dst = s * x without allocating. It panics on shape
// mismatch (the error-returning form is MulVec).
func (s *Sparse) MulVecTo(dst, x []float64) {
	if len(x) != s.cols || len(dst) != s.rows {
		panic(fmt.Sprintf("linalg: sparse MulVecTo %dx%d with x of %d, dst of %d", s.rows, s.cols, len(x), len(dst)))
	}
	for i := 0; i < s.rows; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.val[k] * x[s.colIdx[k]]
		}
		dst[i] = acc
	}
}

// TMulVec returns the product of the transpose, sᵀ * x, without forming
// the transpose.
func (s *Sparse) TMulVec(x []float64) ([]float64, error) {
	if len(x) != s.rows {
		return nil, fmt.Errorf("%w: sparse tmulvec (%dx%d)ᵀ by vector of %d", ErrShape, s.rows, s.cols, len(x))
	}
	out := make([]float64, s.cols)
	s.TMulVecTo(out, x)
	return out, nil
}

// TMulVecTo computes dst = sᵀ * x without allocating. It panics on shape
// mismatch (the error-returning form is TMulVec).
func (s *Sparse) TMulVecTo(dst, x []float64) {
	if len(x) != s.rows || len(dst) != s.cols {
		panic(fmt.Sprintf("linalg: sparse TMulVecTo (%dx%d)ᵀ with x of %d, dst of %d", s.rows, s.cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < s.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			dst[s.colIdx[k]] += xi * s.val[k]
		}
	}
}
