package linalg

import (
	"fmt"
	"sort"
	"sync"
)

// Sparse is an immutable sparse matrix in compressed-sparse-row (CSR)
// form. The routing matrices of this repository are 0/1 incidence-like
// matrices with a handful of fractional ECMP entries — a few nonzeros
// per column out of L+2n rows — so CSR mat-vecs cost O(nnz) instead of
// the O(rows·cols) a dense product pays, which is the difference between
// a projection step dominated by the R·x products and one dominated by
// everything else.
//
// A Sparse is safe for concurrent use: it is never mutated after
// construction.
type Sparse struct {
	rows, cols int
	rowPtr     []int     // len rows+1; row i spans [rowPtr[i], rowPtr[i+1])
	colIdx     []int     // len nnz, column index per stored entry
	val        []float64 // len nnz, entry values in row-major order

	// trOnce/tr lazily cache the transpose in CSR form the first time
	// TMulMatTo needs it, turning the blocked transpose product into a
	// gather with register accumulators instead of a scatter. The cache
	// keeps Sparse's concurrency contract: it is built at most once and
	// never mutated afterwards.
	trOnce sync.Once
	tr     *Sparse
}

// SparseFromDense builds the CSR form of a dense matrix, storing exactly
// the nonzero entries. The input is not retained.
func SparseFromDense(a *Matrix) *Sparse {
	m, n := a.Rows(), a.Cols()
	s := &Sparse{rows: m, cols: n, rowPtr: make([]int, m+1)}
	nnz := 0
	for i := 0; i < m; i++ {
		for _, v := range a.Row(i) {
			if v != 0 {
				nnz++
			}
		}
	}
	s.colIdx = make([]int, 0, nnz)
	s.val = make([]float64, 0, nnz)
	for i := 0; i < m; i++ {
		for j, v := range a.Row(i) {
			if v != 0 {
				s.colIdx = append(s.colIdx, j)
				s.val = append(s.val, v)
			}
		}
		s.rowPtr[i+1] = len(s.val)
	}
	return s
}

// Coord is one (row, col, value) entry in coordinate (triplet) form, the
// input of NewSparse.
type Coord struct {
	Row, Col int
	Val      float64
}

// NewSparse builds a CSR matrix directly from coordinate-form entries,
// without materializing a dense intermediate — the construction path for
// routing matrices at hundred-node scale, where the dense form alone
// costs hundreds of megabytes. Zero-valued entries are dropped (keeping
// the exact-nnz invariant of SparseFromDense); entries are sorted by
// (row, col), so the stored order — and therefore every accumulation
// order downstream — is independent of input order. Out-of-range and
// duplicate (row, col) entries are errors: the callers of this
// repository never legitimately produce them, and summing duplicates
// would make float results depend on input order.
func NewSparse(rows, cols int, entries []Coord) (*Sparse, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("%w: sparse %dx%d", ErrShape, rows, cols)
	}
	kept := make([]Coord, 0, len(entries))
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrShape, e.Row, e.Col, rows, cols)
		}
		if e.Val != 0 {
			kept = append(kept, e)
		}
	}
	// (row, col) pairs are unique after the duplicate check below, so this
	// comparison is a strict total order and the sort is deterministic.
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].Row != kept[b].Row {
			return kept[a].Row < kept[b].Row
		}
		return kept[a].Col < kept[b].Col
	})
	s := &Sparse{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, len(kept)),
		val:    make([]float64, len(kept)),
	}
	for k, e := range kept {
		if k > 0 && kept[k-1].Row == e.Row && kept[k-1].Col == e.Col {
			return nil, fmt.Errorf("%w: duplicate entry (%d,%d)", ErrShape, e.Row, e.Col)
		}
		s.colIdx[k] = e.Col
		s.val[k] = e.Val
	}
	row := 0
	for k, e := range kept {
		for row < e.Row {
			row++
			s.rowPtr[row] = k
		}
	}
	for row < rows {
		row++
		s.rowPtr[row] = len(kept)
	}
	return s, nil
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored (nonzero) entries.
func (s *Sparse) NNZ() int { return len(s.val) }

// Dense materializes the matrix back into dense row-major form.
func (s *Sparse) Dense() *Matrix {
	out := NewMatrix(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		row := out.Row(i)
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			row[s.colIdx[k]] = s.val[k]
		}
	}
	return out
}

// MulVec returns the matrix-vector product s * x.
func (s *Sparse) MulVec(x []float64) ([]float64, error) {
	if len(x) != s.cols {
		return nil, fmt.Errorf("%w: sparse mulvec %dx%d by vector of %d", ErrShape, s.rows, s.cols, len(x))
	}
	out := make([]float64, s.rows)
	s.MulVecTo(out, x)
	return out, nil
}

// MulVecTo computes dst = s * x without allocating. It panics on shape
// mismatch (the error-returning form is MulVec).
func (s *Sparse) MulVecTo(dst, x []float64) {
	if len(x) != s.cols || len(dst) != s.rows {
		panic(fmt.Sprintf("linalg: sparse MulVecTo %dx%d with x of %d, dst of %d", s.rows, s.cols, len(x), len(dst)))
	}
	for i := 0; i < s.rows; i++ {
		var acc float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			acc += s.val[k] * x[s.colIdx[k]]
		}
		dst[i] = acc
	}
}

// MulMatTo computes dst = s · X for k right-hand sides in one pass.
// X and dst use an interleaved (row-major, k columns) layout: x[j*k+c]
// is entry j of right-hand side c, dst[i*k+c] entry i of product c.
// Amortizing the index/value loads of a row traversal over k sides —
// with the partial sums of four sides at a time held in registers — is
// what makes the blocked LSQRMulti driver cheaper per system than k
// separate solves. Column c of the result is bit-identical to MulVecTo
// on column c alone: each column accumulates the same values in the
// same (row-major nonzero) order. It panics on shape mismatch.
func (s *Sparse) MulMatTo(dst, x []float64, k int) {
	if k <= 0 || len(x) != s.cols*k || len(dst) != s.rows*k {
		panic(fmt.Sprintf("linalg: sparse MulMatTo %dx%d with k=%d, x of %d, dst of %d", s.rows, s.cols, k, len(x), len(dst)))
	}
	mulMatGather(s.rowPtr, s.colIdx, s.val, dst, x, s.rows, k)
}

// TMulMatTo computes dst = sᵀ · X for k right-hand sides, with the same
// interleaved layout as MulMatTo (x has k·rows entries, dst k·cols). It
// runs as a gather over a lazily-built, cached transpose of s, so each
// output entry accumulates its terms in the same ascending-row order as
// TMulVecTo's scatter, making column c bit-identical to TMulVecTo on
// column c alone. (TMulVecTo skips zero entries of x; a gather needs no
// skip to match it bitwise: its accumulator starts at +0, and adding
// ±0·v for finite v can never flip an accumulator's bits.) It panics on
// shape mismatch.
func (s *Sparse) TMulMatTo(dst, x []float64, k int) {
	if k <= 0 || len(x) != s.rows*k || len(dst) != s.cols*k {
		panic(fmt.Sprintf("linalg: sparse TMulMatTo (%dx%d)ᵀ with k=%d, x of %d, dst of %d", s.rows, s.cols, k, len(x), len(dst)))
	}
	t := s.transpose()
	mulMatGather(t.rowPtr, t.colIdx, t.val, dst, x, t.rows, k)
}

// transpose returns the cached CSR form of sᵀ, building it on first use.
// Entries of transpose row j are ordered by ascending original row —
// the same order in which TMulVecTo's scatter touches output j.
func (s *Sparse) transpose() *Sparse {
	s.trOnce.Do(func() {
		t := &Sparse{
			rows:   s.cols,
			cols:   s.rows,
			rowPtr: make([]int, s.cols+1),
			colIdx: make([]int, len(s.val)),
			val:    make([]float64, len(s.val)),
		}
		for _, j := range s.colIdx {
			t.rowPtr[j+1]++
		}
		for j := 0; j < s.cols; j++ {
			t.rowPtr[j+1] += t.rowPtr[j]
		}
		next := make([]int, s.cols)
		copy(next, t.rowPtr[:s.cols])
		for i := 0; i < s.rows; i++ {
			for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
				j := s.colIdx[p]
				t.colIdx[next[j]] = i
				t.val[next[j]] = s.val[p]
				next[j]++
			}
		}
		s.tr = t
	})
	return s.tr
}

// mulMatGather is the shared blocked kernel: dst = M · X where M is the
// CSR triple (rowPtr, colIdx, val) with the given row count, X
// interleaved k-wide. Lanes run eight at a time (then four, then one)
// so the partial sums live in registers across a row's nonzeros; each
// row's index/value stream is re-read once per lane tile, trading a
// little redundant index traffic for accumulators that never
// round-trip through memory.
func mulMatGather(rowPtr, colIdx []int, val, dst, x []float64, rows, k int) {
	for i := 0; i < rows; i++ {
		row := colIdx[rowPtr[i]:rowPtr[i+1]]
		vals := val[rowPtr[i]:rowPtr[i+1]]
		d := dst[i*k : i*k+k]
		c := 0
		for ; c+8 <= k; c += 8 {
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			for p, j := range row {
				v := vals[p]
				xb := x[j*k+c : j*k+c+8 : j*k+c+8]
				a0 += v * xb[0]
				a1 += v * xb[1]
				a2 += v * xb[2]
				a3 += v * xb[3]
				a4 += v * xb[4]
				a5 += v * xb[5]
				a6 += v * xb[6]
				a7 += v * xb[7]
			}
			d[c] = a0
			d[c+1] = a1
			d[c+2] = a2
			d[c+3] = a3
			d[c+4] = a4
			d[c+5] = a5
			d[c+6] = a6
			d[c+7] = a7
		}
		for ; c+4 <= k; c += 4 {
			var a0, a1, a2, a3 float64
			for p, j := range row {
				v := vals[p]
				xb := x[j*k+c : j*k+c+4 : j*k+c+4]
				a0 += v * xb[0]
				a1 += v * xb[1]
				a2 += v * xb[2]
				a3 += v * xb[3]
			}
			d[c] = a0
			d[c+1] = a1
			d[c+2] = a2
			d[c+3] = a3
		}
		for ; c < k; c++ {
			var acc float64
			for p, j := range row {
				acc += vals[p] * x[j*k+c]
			}
			d[c] = acc
		}
	}
}

// TMulVec returns the product of the transpose, sᵀ * x, without forming
// the transpose.
func (s *Sparse) TMulVec(x []float64) ([]float64, error) {
	if len(x) != s.rows {
		return nil, fmt.Errorf("%w: sparse tmulvec (%dx%d)ᵀ by vector of %d", ErrShape, s.rows, s.cols, len(x))
	}
	out := make([]float64, s.cols)
	s.TMulVecTo(out, x)
	return out, nil
}

// TMulVecTo computes dst = sᵀ * x without allocating. It panics on shape
// mismatch (the error-returning form is TMulVec).
func (s *Sparse) TMulVecTo(dst, x []float64) {
	if len(x) != s.rows || len(dst) != s.cols {
		panic(fmt.Sprintf("linalg: sparse TMulVecTo (%dx%d)ᵀ with x of %d, dst of %d", s.rows, s.cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < s.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			dst[s.colIdx[k]] += xi * s.val[k]
		}
	}
}
