package linalg

import "fmt"

// RowMasked wraps an operator with a row mask: dropped rows behave as
// all-zero rows of A, so a least-squares solve against the wrapper sees
// a system from which those equations have been removed — without
// rebuilding the CSR structure per bin. It is the estimation layer's
// masked-solve primitive for bins with missing or invalid link reports.
//
// The masked view is bitwise-equivalent to physically compacting the
// kept rows into a smaller matrix: a zeroed row contributes exact 0.0
// terms to every accumulation (x + 0.0 == x for finite x), Sparse's
// TMulVecTo skips zero entries of its input outright, and the relative
// order of the surviving terms is unchanged — so LSQR's recurrences,
// and therefore its solution, match the compacted system bit for bit
// (asserted by tests). That property is what keeps degraded bins inside
// the pipeline's workers=1 ≡ workers=N determinism contract.
//
// Like ColScaled, the wrapper allocates one scratch vector at
// construction and is therefore NOT safe for concurrent use; create one
// per solve (they are cheap).
type RowMasked struct {
	a       Op
	keep    []bool
	scratch []float64
}

// NewRowMasked wraps a with a row mask: keep[i] == false drops row i.
// It panics when the mask does not match a's row count.
func NewRowMasked(a Op, keep []bool) *RowMasked {
	if len(keep) != a.Rows() {
		panic(fmt.Sprintf("linalg: RowMasked with %d mask entries for %d rows", len(keep), a.Rows()))
	}
	return &RowMasked{a: a, keep: keep, scratch: make([]float64, a.Rows())}
}

// Rows returns the wrapped operator's row count (the mask hides rows,
// it does not renumber them).
func (m *RowMasked) Rows() int { return m.a.Rows() }

// Cols returns the wrapped operator's column count.
func (m *RowMasked) Cols() int { return m.a.Cols() }

// MulVecTo computes dst = A·x with dropped rows forced to zero.
func (m *RowMasked) MulVecTo(dst, x []float64) {
	m.a.MulVecTo(dst, x)
	for i, k := range m.keep {
		if !k {
			dst[i] = 0
		}
	}
}

// TMulVecTo computes dst = Aᵀ·x as if dropped rows of A were zero: their
// x entries are zeroed before the transpose product, so they contribute
// nothing to any column accumulation.
func (m *RowMasked) TMulVecTo(dst, x []float64) {
	for i, k := range m.keep {
		if k {
			m.scratch[i] = x[i]
		} else {
			m.scratch[i] = 0
		}
	}
	m.a.TMulVecTo(dst, m.scratch)
}
