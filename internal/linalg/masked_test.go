package linalg

import (
	"math"
	"testing"

	"ictm/internal/rng"
)

// randomSystem builds a random sparse least-squares system of the rough
// shape of a routing system (tall, a few entries per row).
func randomSystem(t *testing.T, rows, cols int, seed uint64) (*Sparse, []float64) {
	t.Helper()
	r := rng.New(seed)
	var entries []Coord
	for i := 0; i < rows; i++ {
		// 2-4 entries per row at distinct columns.
		k := 2 + r.Intn(3)
		used := map[int]bool{}
		for len(used) < k {
			c := r.Intn(cols)
			if used[c] {
				continue
			}
			used[c] = true
			entries = append(entries, Coord{Row: i, Col: c, Val: 0.25 + r.Float64()})
		}
	}
	s, err := NewSparse(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, rows)
	for i := range b {
		b[i] = r.Float64()*2 - 1
	}
	return s, b
}

// compactRows builds the physically row-compacted counterpart of a
// masked system: kept rows renumbered densely, dropped rows absent.
func compactRows(t *testing.T, s *Sparse, b []float64, keep []bool) (*Sparse, []float64) {
	t.Helper()
	dense := s.Dense()
	var entries []Coord
	var bc []float64
	row := 0
	for i := 0; i < s.Rows(); i++ {
		if !keep[i] {
			continue
		}
		for j, v := range dense.Row(i) {
			if v != 0 {
				entries = append(entries, Coord{Row: row, Col: j, Val: v})
			}
		}
		bc = append(bc, b[i])
		row++
	}
	sc, err := NewSparse(row, s.Cols(), entries)
	if err != nil {
		t.Fatal(err)
	}
	return sc, bc
}

// TestRowMaskedBitwiseEqualsCompacted is the masked-solve determinism
// contract: LSQR on the RowMasked view solves the identical problem, bit
// for bit, as LSQR on a matrix with the dropped rows physically removed.
func TestRowMaskedBitwiseEqualsCompacted(t *testing.T) {
	for _, seed := range []uint64{1, 7, 2024} {
		s, b := randomSystem(t, 120, 49, seed)
		r := rng.New(seed + 100)
		keep := make([]bool, s.Rows())
		kept := 0
		for i := range keep {
			keep[i] = r.Float64() > 0.3
			if keep[i] {
				kept++
			}
		}
		if kept == 0 || kept == len(keep) {
			t.Fatalf("degenerate mask for seed %d", seed)
		}
		bm := make([]float64, len(b))
		for i := range b {
			if keep[i] {
				bm[i] = b[i]
			}
		}
		xm, repM, err := LSQR(NewRowMasked(s, keep), bm, LSQROptions{})
		if err != nil {
			t.Fatal(err)
		}
		sc, bc := compactRows(t, s, b, keep)
		xc, repC, err := LSQR(sc, bc, LSQROptions{})
		if err != nil {
			t.Fatal(err)
		}
		if repM != repC {
			t.Fatalf("seed %d: reports differ: masked %+v, compacted %+v", seed, repM, repC)
		}
		for j := range xm {
			if xm[j] != xc[j] {
				t.Fatalf("seed %d: x[%d] masked %v != compacted %v (diff %g)",
					seed, j, xm[j], xc[j], math.Abs(xm[j]-xc[j]))
			}
		}
	}
}

// TestRowMaskedAllKept: an all-true mask is the identity view.
func TestRowMaskedAllKept(t *testing.T) {
	s, b := randomSystem(t, 60, 25, 5)
	keep := make([]bool, s.Rows())
	for i := range keep {
		keep[i] = true
	}
	x0, rep0, err := LSQR(s, b, LSQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	x1, rep1, err := LSQR(NewRowMasked(s, keep), b, LSQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep0 != rep1 {
		t.Fatalf("reports differ: %+v vs %+v", rep0, rep1)
	}
	for j := range x0 {
		if x0[j] != x1[j] {
			t.Fatalf("x[%d] %v != %v", j, x0[j], x1[j])
		}
	}
}

// TestRowMaskedProducts pins the operator semantics directly: dropped
// rows read as zero rows in both products.
func TestRowMaskedProducts(t *testing.T) {
	s, _ := randomSystem(t, 20, 8, 11)
	keep := make([]bool, 20)
	for i := range keep {
		keep[i] = i%3 != 0
	}
	m := NewRowMasked(s, keep)
	if m.Rows() != 20 || m.Cols() != 8 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	x := make([]float64, 8)
	for j := range x {
		x[j] = float64(j + 1)
	}
	full := make([]float64, 20)
	s.MulVecTo(full, x)
	got := make([]float64, 20)
	m.MulVecTo(got, x)
	for i := range got {
		want := full[i]
		if !keep[i] {
			want = 0
		}
		if got[i] != want {
			t.Fatalf("MulVecTo row %d = %g, want %g", i, got[i], want)
		}
	}
	u := make([]float64, 20)
	for i := range u {
		u[i] = float64(i) - 9.5
	}
	uz := make([]float64, 20)
	for i := range u {
		if keep[i] {
			uz[i] = u[i]
		}
	}
	wantT := make([]float64, 8)
	s.TMulVecTo(wantT, uz)
	gotT := make([]float64, 8)
	m.TMulVecTo(gotT, u)
	for j := range gotT {
		if gotT[j] != wantT[j] {
			t.Fatalf("TMulVecTo col %d = %g, want %g", j, gotT[j], wantT[j])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched mask length did not panic")
		}
	}()
	NewRowMasked(s, make([]bool, 3))
}
