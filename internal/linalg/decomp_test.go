package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSPD returns a random symmetric positive-definite n x n matrix.
func randomSPD(r *rand.Rand, n int) *Matrix {
	a := randomMatrix(r, n+2, n) // extra rows guarantee full column rank w.h.p.
	spd := a.AtA()
	for i := 0; i < n; i++ {
		spd.Add(i, i, 0.5) // bound away from singularity
	}
	return spd
}

func TestCholeskyHandChecked(t *testing.T) {
	// A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt2]]
	a, _ := NewMatrixFromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := ch.L()
	if math.Abs(l.At(0, 0)-2) > 1e-14 || math.Abs(l.At(1, 0)-1) > 1e-14 ||
		math.Abs(l.At(1, 1)-math.Sqrt2) > 1e-14 || l.At(0, 1) != 0 {
		t.Errorf("L = %v", l)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(15)
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		l := ch.L()
		llt, _ := l.Mul(l.T())
		if !llt.Equal(a, 1e-9*a.MaxAbs()) {
			t.Fatalf("trial %d: L·Lᵀ != A", trial)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(15)
		a := randomSPD(r, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b, _ := a.MulVec(want)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if MaxAbsDiff(got, want) > 1e-7 {
			t.Fatalf("trial %d: solve error %g", trial, MaxAbsDiff(got, want))
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("indefinite matrix: err = %v, want ErrSingular", err)
	}
}

func TestCholeskyRidgeRecovers(t *testing.T) {
	// Singular PSD matrix; the ridge retry should succeed.
	a, _ := NewMatrixFromRows([][]float64{{1, 1}, {1, 1}})
	ch, err := NewCholeskyRidge(a, 1e-8)
	if err != nil {
		t.Fatalf("ridge failed: %v", err)
	}
	if _, err := ch.Solve([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ch.SolveMatrix(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewMatrixFromRows([][]float64{{0.25, 0}, {0, 1.0 / 9}})
	if !x.Equal(want, 1e-14) {
		t.Errorf("A⁻¹ = %v, want %v", x, want)
	}
}

func TestQRReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		m := 2 + r.Intn(15)
		n := 1 + r.Intn(m)
		a := randomMatrix(r, m, n)
		qr, err := NewQR(a)
		if err != nil {
			t.Fatal(err)
		}
		q := qr.Q()
		rr := qr.R()
		prod, _ := q.Mul(rr)
		if !prod.Equal(a, 1e-9) {
			t.Fatalf("trial %d: Q·R != A (err %g)", trial, prod.MaxAbs())
		}
		// Q orthonormal columns.
		qtq := q.AtA()
		if !qtq.Equal(Identity(n), 1e-9) {
			t.Fatalf("trial %d: QᵀQ != I", trial)
		}
	}
}

func TestQRSolveMatchesResidualOrthogonality(t *testing.T) {
	// At the LS optimum the residual is orthogonal to the column space.
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := 5 + r.Intn(15)
		n := 1 + r.Intn(4)
		a := randomMatrix(r, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		qr, err := NewQR(a)
		if err != nil {
			t.Fatal(err)
		}
		x, err := qr.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		ax, _ := a.MulVec(x)
		res := SubVec(b, ax)
		atr, _ := a.TMulVec(res)
		if Norm2(atr) > 1e-8*(1+Norm2(b)) {
			t.Fatalf("trial %d: Aᵀr = %g not ~0", trial, Norm2(atr))
		}
	}
}

func TestQRRankDeficiency(t *testing.T) {
	// Second column is a multiple of the first.
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if qr.FullRank() {
		t.Error("rank-1 matrix reported full rank")
	}
	if _, err := qr.Solve([]float64{1, 1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("Solve on rank-deficient: err = %v, want ErrSingular", err)
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Error("QR of wide matrix must fail with ErrShape")
	}
}

func TestSVDHandChecked(t *testing.T) {
	// diag(3, 2) has singular values 3, 2.
	a := Diag([]float64{3, 2})
	d, err := NewSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.S[0]-3) > 1e-12 || math.Abs(d.S[1]-2) > 1e-12 {
		t.Errorf("S = %v, want [3 2]", d.S)
	}
}

func svdReconstruct(d *SVD) *Matrix {
	us := d.U.Clone()
	for j, s := range d.S {
		for i := 0; i < us.Rows(); i++ {
			us.Set(i, j, us.At(i, j)*s)
		}
	}
	out, _ := us.Mul(d.V.T())
	return out
}

func TestSVDReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 25; trial++ {
		m := 1 + r.Intn(15)
		n := 1 + r.Intn(15)
		a := randomMatrix(r, m, n)
		d, err := NewSVD(a)
		if err != nil {
			t.Fatal(err)
		}
		if !svdReconstruct(d).Equal(a, 1e-9) {
			t.Fatalf("trial %d: U·S·Vᵀ != A (%dx%d)", trial, m, n)
		}
		// Descending order.
		for k := 1; k < len(d.S); k++ {
			if d.S[k] > d.S[k-1]+1e-12 {
				t.Fatalf("trial %d: S not descending: %v", trial, d.S)
			}
		}
		// Orthonormality.
		if !d.U.AtA().Equal(Identity(d.U.Cols()), 1e-9) {
			t.Fatalf("trial %d: UᵀU != I", trial)
		}
		if !d.V.AtA().Equal(Identity(d.V.Cols()), 1e-9) {
			t.Fatalf("trial %d: VᵀV != I", trial)
		}
	}
}

func TestSVDZeroAndEmpty(t *testing.T) {
	d, err := NewSVD(NewMatrix(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d.S[0] != 0 || d.S[1] != 0 {
		t.Errorf("S of zero matrix = %v", d.S)
	}
	if d.Rank(0) != 0 {
		t.Errorf("rank of zero matrix = %d", d.Rank(0))
	}
	if _, err := NewSVD(NewMatrix(0, 0)); err != nil {
		t.Errorf("SVD of empty: %v", err)
	}
}

func TestSVDRankAndCond(t *testing.T) {
	a := Diag([]float64{4, 2, 0})
	d, err := NewSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Rank(0); got != 2 {
		t.Errorf("Rank = %d, want 2", got)
	}
	if !math.IsInf(d.Cond(), 1) {
		t.Errorf("Cond = %g, want +Inf", d.Cond())
	}
}

func penroseCheck(t *testing.T, a, ap *Matrix, tol float64) {
	t.Helper()
	// 1. A·A⁺·A = A
	aap, _ := a.Mul(ap)
	aapa, _ := aap.Mul(a)
	if !aapa.Equal(a, tol) {
		t.Error("Penrose 1 failed: A·A⁺·A != A")
	}
	// 2. A⁺·A·A⁺ = A⁺
	apa, _ := ap.Mul(a)
	apaap, _ := apa.Mul(ap)
	if !apaap.Equal(ap, tol) {
		t.Error("Penrose 2 failed: A⁺·A·A⁺ != A⁺")
	}
	// 3. (A·A⁺)ᵀ = A·A⁺
	if !aap.T().Equal(aap, tol) {
		t.Error("Penrose 3 failed: A·A⁺ not symmetric")
	}
	// 4. (A⁺·A)ᵀ = A⁺·A
	if !apa.T().Equal(apa, tol) {
		t.Error("Penrose 4 failed: A⁺·A not symmetric")
	}
}

func TestPInvPenroseConditions(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 15; trial++ {
		m := 1 + r.Intn(10)
		n := 1 + r.Intn(10)
		a := randomMatrix(r, m, n)
		ap, err := PInv(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		penroseCheck(t, a, ap, 1e-8)
	}
}

func TestPInvRankDeficient(t *testing.T) {
	// Rank-1 matrix: pinv must still satisfy Penrose conditions.
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	ap, err := PInv(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	penroseCheck(t, a, ap, 1e-10)
}

func TestSolveMinNormMatchesPInv(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 15; trial++ {
		m := 1 + r.Intn(8)
		n := 1 + r.Intn(8)
		a := randomMatrix(r, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		ap, err := PInv(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ap.MulVec(b)
		got, err := SolveMinNorm(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if MaxAbsDiff(got, want) > 1e-8 {
			t.Fatalf("trial %d: min-norm mismatch %g", trial, MaxAbsDiff(got, want))
		}
	}
}

func TestLstSqConsistentSystem(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	want := []float64{2, 3}
	b, _ := a.MulVec(want)
	got, err := LstSq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(got, want) > 1e-10 {
		t.Errorf("LstSq = %v, want %v", got, want)
	}
}

func TestLstSqUnderdetermined(t *testing.T) {
	// Wide system: 1x2. Minimum-norm solution of x+y=2 is (1,1).
	a, _ := NewMatrixFromRows([][]float64{{1, 1}})
	got, err := LstSq(a, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(got, []float64{1, 1}) > 1e-10 {
		t.Errorf("LstSq underdetermined = %v, want [1 1]", got)
	}
}

func TestSolveSPD(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	b := []float64{3, 3}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(x, []float64{1, 1}) > 1e-10 {
		t.Errorf("SolveSPD = %v, want [1 1]", x)
	}
}

func TestNNLSClampInteriorOptimum(t *testing.T) {
	// Unconstrained optimum already non-negative: NNLS equals plain solve.
	a, _ := NewMatrixFromRows([][]float64{{2, 0}, {0, 2}})
	x, err := NNLSClamp(a, []float64{2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(x, []float64{1, 2}) > 1e-10 {
		t.Errorf("NNLSClamp = %v, want [1 2]", x)
	}
}

func TestNNLSClampActiveSet(t *testing.T) {
	// min ||x - (-1, 2)||² s.t. x >= 0 has solution (0, 2).
	ata := Identity(2)
	x, err := NNLSClamp(ata, []float64{-1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(x, []float64{0, 2}) > 1e-10 {
		t.Errorf("NNLSClamp = %v, want [0 2]", x)
	}
	for _, v := range x {
		if v < 0 {
			t.Error("NNLSClamp returned negative coordinate")
		}
	}
}

func TestNNLSClampAllClamped(t *testing.T) {
	ata := Identity(2)
	x, err := NNLSClamp(ata, []float64{-1, -2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Errorf("NNLSClamp = %v, want zeros", x)
	}
}

func TestCondFinite(t *testing.T) {
	d, err := NewSVD(Diag([]float64{4, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Cond(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Cond = %g, want 2", got)
	}
	empty, err := NewSVD(NewMatrix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Cond() != 0 {
		t.Errorf("Cond of empty = %g", empty.Cond())
	}
}
