package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroFilled(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(2, 1); got != 6 {
		t.Errorf("At(2,1) = %g, want 6", got)
	}
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows: want error, got nil")
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	m, err := NewMatrixFromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("empty matrix shape = %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if !id.Equal(d, 0) {
		t.Error("Identity(3) != Diag(ones)")
	}
}

func TestSetGetRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("Set/At roundtrip failed")
	}
	m.SetRow(0, []float64{1, 2, 3})
	col := m.Col(2)
	if col[0] != 3 || col[1] != 7 {
		t.Errorf("Col(2) = %v, want [3 7]", col)
	}
	// Row shares storage.
	m.Row(0)[0] = 9
	if m.At(0, 0) != 9 {
		t.Error("Row must alias backing storage")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T shape = %dx%d, want 3x2", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulHandChecked(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewMatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 1e-15) {
		t.Errorf("Mul = %v, want %v", c, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("2x3 * 2x3: want shape error")
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", y)
	}
	z, err := a.TMulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Errorf("TMulVec = %v, want [5 7 9]", z)
	}
}

func randomMatrix(r *rand.Rand, m, n int) *Matrix {
	a := NewMatrix(m, n)
	for i := range a.data {
		a.data[i] = r.NormFloat64()
	}
	return a
}

// Property: AtA equals explicit Aᵀ·A and AAt equals A·Aᵀ.
func TestGramMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		m := 1 + r.Intn(12)
		n := 1 + r.Intn(12)
		a := randomMatrix(r, m, n)
		want, _ := a.T().Mul(a)
		if got := a.AtA(); !got.Equal(want, 1e-10) {
			t.Fatalf("trial %d: AtA mismatch", trial)
		}
		want2, _ := a.Mul(a.T())
		if got := a.AAt(); !got.Equal(want2, 1e-10) {
			t.Fatalf("trial %d: AAt mismatch", trial)
		}
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestTransposeOfProduct(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		ab, _ := a.Mul(b)
		btat, _ := b.T().Mul(a.T())
		if !ab.T().Equal(btat, 1e-10) {
			t.Fatalf("trial %d: (AB)ᵀ != BᵀAᵀ", trial)
		}
	}
}

// Property: TMulVec(x) == T().MulVec(x).
func TestTMulVecMatchesTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		a := randomMatrix(r, m, n)
		x := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got, _ := a.TMulVec(x)
		want, _ := a.T().MulVec(x)
		if MaxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("trial %d: TMulVec mismatch", trial)
		}
	}
}

func TestAddSubScaleClone(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.AddM(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 5 || sum.At(1, 1) != 5 {
		t.Errorf("AddM wrong: %v", sum)
	}
	diff, err := sum.SubM(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a, 0) {
		t.Error("(a+b)-b != a")
	}
	c := a.Clone().Scale(2)
	if a.At(0, 0) != 1 {
		t.Error("Scale of clone mutated original")
	}
	if c.At(0, 0) != 2 {
		t.Error("Scale failed")
	}
}

func TestFrobAndMaxAbs(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{3, 0}, {0, -4}})
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobNorm = %g, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %g, want 4", got)
	}
}

func TestStringElision(t *testing.T) {
	small := Identity(2)
	if s := small.String(); len(s) == 0 {
		t.Error("String of small matrix empty")
	}
	big := NewMatrix(20, 20)
	if s := big.String(); len(s) > 40 {
		t.Errorf("String of big matrix should be elided, got %q", s)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range must panic")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

// quick property: scaling by s multiplies the Frobenius norm by |s|.
func TestScaleFrobeniusQuick(t *testing.T) {
	f := func(vals [6]float64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e6 {
			return true
		}
		m := NewMatrix(2, 3)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
			m.data[i] = v
		}
		before := m.FrobNorm()
		after := m.Clone().Scale(s).FrobNorm()
		return math.Abs(after-math.Abs(s)*before) <= 1e-6*(1+after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDataAliasesStorage(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Data()[3] = 9
	if m.At(1, 1) != 9 {
		t.Error("Data must alias the backing storage")
	}
}
