package linalg

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// updateCorpus rewrites the committed FuzzSparseDecode seed corpus
// instead of checking it:
//
//	go test ./internal/linalg -run FuzzCorpus -update-corpus
var updateCorpus = flag.Bool("update-corpus", false, "rewrite the committed fuzz corpus")

// corpusDir is where `go test` picks the committed seeds up
// automatically when running FuzzSparseDecode as a unit test.
var corpusDir = filepath.Join("testdata", "fuzz", "FuzzSparseDecode")

// corpusSeeds are the committed inputs: valid encodings across shapes,
// the interesting malformations (truncation, forged header, version
// skew, bit flip), and the degenerate prefixes — one reproducible set,
// so a decoder regression fails the plain test suite, not just a long
// fuzz run.
func corpusSeeds() [][]byte {
	r := rand.New(rand.NewSource(97))
	var seeds [][]byte
	seeds = append(seeds, []byte{}, []byte{sparseCodecVersion}, []byte{99})
	for _, dims := range [][2]int{{1, 1}, {2, 7}, {5, 5}, {11, 3}} {
		s := SparseFromDense(randomSparseMatrix(r, dims[0], dims[1], 0.35))
		enc := s.AppendBinary(nil)
		seeds = append(seeds, enc)
		seeds = append(seeds, enc[:len(enc)/2], enc[:len(enc)-1]) // truncations
		flip := append([]byte(nil), enc...)                       // bit flip mid-payload
		flip[len(flip)/3] ^= 0x10
		seeds = append(seeds, flip)
	}
	forged := corpusSeedsForgedHeader()
	return append(seeds, forged...)
}

// corpusSeedsForgedHeader builds encodings whose headers overclaim
// their payload — the allocation-bomb shape the decoder must bound.
func corpusSeedsForgedHeader() [][]byte {
	s, err := NewSparse(1, 2, []Coord{{Row: 0, Col: 1, Val: 2.5}})
	if err != nil {
		panic(err)
	}
	enc := s.AppendBinary(nil)
	var out [][]byte
	for _, off := range []int{1, 9, 17} { // rows, cols, nnz fields
		mut := append([]byte(nil), enc...)
		for i := 0; i < 8; i++ {
			mut[off+i] = 0xff
		}
		out = append(out, mut)
	}
	return out
}

// TestFuzzCorpusCommitted pins the committed FuzzSparseDecode corpus:
// the files exist in Go's "go test fuzz v1" format, and every entry
// upholds the fuzz target's property — DecodeSparse returns a valid
// matrix or ErrDecode, never panics, and accepted inputs round-trip.
// (go test runs the same files through FuzzSparseDecode itself; this
// test additionally fails loudly if the corpus goes missing or stale.)
func TestFuzzCorpusCommitted(t *testing.T) {
	if *updateCorpus {
		if err := os.RemoveAll(corpusDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range corpusSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(corpusDir, fmt.Sprintf("seed-%03d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("committed corpus missing (regenerate with -update-corpus): %v", err)
	}
	if len(entries) < 10 {
		t.Fatalf("committed corpus has %d entries, want at least 10", len(entries))
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
		if len(lines) != 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not in go test fuzz v1 format", e.Name())
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		decoded, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: unquoting corpus entry: %v", e.Name(), err)
		}
		data := []byte(decoded)

		// The fuzz target's property, replayed directly.
		s, err := DecodeSparse(data)
		if err != nil {
			continue
		}
		enc := s.AppendBinary(nil)
		back, err := DecodeSparse(enc)
		if err != nil {
			t.Fatalf("%s: re-decode of accepted input: %v", e.Name(), err)
		}
		if !sparseEqualBitwise(s, back) {
			t.Fatalf("%s: accepted input does not round-trip", e.Name())
		}
	}
}
