package linalg

import "math"

// Dot returns the dot product of equal-length slices a and b.
// It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow for
// large magnitudes by scaling.
func Norm2(v []float64) float64 {
	var max float64
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		t := x / max
		s += t * t
	}
	return max * math.Sqrt(s)
}

// Norm1 returns the sum of absolute values of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Axpy computes y += alpha * x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies v by s in place and returns v.
func ScaleVec(s float64, v []float64) []float64 {
	for i := range v {
		v[i] *= s
	}
	return v
}

// SubVec returns a - b as a new slice. It panics on length mismatch.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: SubVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddVec returns a + b as a new slice. It panics on length mismatch.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b. It panics on length mismatch.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: MaxAbsDiff length mismatch")
	}
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
