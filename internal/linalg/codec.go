package linalg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrDecode reports a byte stream that is not a valid Sparse encoding:
// wrong version, truncated or trailing bytes, or structural invariants
// (monotone row pointers, in-range sorted column indices, no stored
// zeros) violated. Decoding is total — any input yields a Sparse or an
// ErrDecode, never a panic — so a disk-backed store can map it onto its
// corruption error instead of crashing the process on a bad blob.
var ErrDecode = errors.New("linalg: invalid sparse encoding")

// sparseCodecVersion is the current wire version of the Sparse binary
// encoding. Bump it when the layout changes; DecodeSparse rejects
// versions it does not speak, so stale blobs fail typed instead of
// misparsing.
const sparseCodecVersion = 1

// sparseHeaderLen is the fixed prefix: version byte plus rows, cols and
// nnz as little-endian uint64s.
const sparseHeaderLen = 1 + 3*8

// AppendBinary appends the versioned binary encoding of s to buf and
// returns the extended slice. The layout (all integers little-endian
// uint64, values as IEEE-754 bit patterns) is
//
//	version(1) | rows | cols | nnz | rowPtr[rows+1] | colIdx[nnz] | val[nnz]
//
// The encoding is canonical: equal matrices produce equal bytes, and
// DecodeSparse reconstructs the receiver bitwise — every downstream
// accumulation order, and therefore every float result, is preserved
// across a store round trip.
func (s *Sparse) AppendBinary(buf []byte) []byte {
	buf = append(buf, sparseCodecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.rows))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.cols))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.val)))
	for _, p := range s.rowPtr {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p))
	}
	for _, j := range s.colIdx {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(j))
	}
	for _, v := range s.val {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// EncodedLen returns the exact byte length AppendBinary will emit for s.
func (s *Sparse) EncodedLen() int {
	return sparseHeaderLen + 8*(s.rows+1) + 16*len(s.val)
}

// DecodeSparse parses the encoding produced by AppendBinary, consuming
// the whole input. Every structural invariant of NewSparse is
// re-checked — row pointers start at 0, end at nnz and never decrease,
// column indices are in range and strictly increasing within a row, no
// stored value is zero — so a decoded matrix is indistinguishable from
// a constructed one and malformed input fails with ErrDecode before any
// oversized allocation.
func DecodeSparse(data []byte) (*Sparse, error) {
	if len(data) < sparseHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least the %d-byte header", ErrDecode, len(data), sparseHeaderLen)
	}
	if data[0] != sparseCodecVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrDecode, data[0], sparseCodecVersion)
	}
	rows := binary.LittleEndian.Uint64(data[1:])
	cols := binary.LittleEndian.Uint64(data[9:])
	nnz := binary.LittleEndian.Uint64(data[17:])
	// Bound the dimensions before computing the expected length so the
	// size arithmetic cannot overflow and a forged header cannot trigger
	// a huge allocation: every legitimate field is far below 2^32.
	const maxDim = 1 << 32
	if rows >= maxDim || cols >= maxDim || nnz >= maxDim {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d nnz=%d", ErrDecode, rows, cols, nnz)
	}
	if nnz > rows*cols {
		return nil, fmt.Errorf("%w: nnz=%d exceeds %dx%d", ErrDecode, nnz, rows, cols)
	}
	want := uint64(sparseHeaderLen) + 8*(rows+1) + 16*nnz
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("%w: %d bytes for %dx%d nnz=%d, want %d", ErrDecode, len(data), rows, cols, nnz, want)
	}
	s := &Sparse{
		rows:   int(rows),
		cols:   int(cols),
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, nnz),
		val:    make([]float64, nnz),
	}
	off := sparseHeaderLen
	for i := range s.rowPtr {
		p := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if p > nnz {
			return nil, fmt.Errorf("%w: rowPtr[%d]=%d exceeds nnz=%d", ErrDecode, i, p, nnz)
		}
		s.rowPtr[i] = int(p)
	}
	if s.rowPtr[0] != 0 || s.rowPtr[rows] != int(nnz) {
		return nil, fmt.Errorf("%w: rowPtr spans [%d,%d], want [0,%d]", ErrDecode, s.rowPtr[0], s.rowPtr[rows], nnz)
	}
	for i := 0; i < int(rows); i++ {
		if s.rowPtr[i] > s.rowPtr[i+1] {
			return nil, fmt.Errorf("%w: rowPtr decreases at row %d", ErrDecode, i)
		}
	}
	for k := range s.colIdx {
		j := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if j >= cols {
			return nil, fmt.Errorf("%w: colIdx[%d]=%d outside %d columns", ErrDecode, k, j, cols)
		}
		s.colIdx[k] = int(j)
	}
	for i := 0; i < int(rows); i++ {
		for k := s.rowPtr[i] + 1; k < s.rowPtr[i+1]; k++ {
			if s.colIdx[k-1] >= s.colIdx[k] {
				return nil, fmt.Errorf("%w: row %d columns not strictly increasing at entry %d", ErrDecode, i, k)
			}
		}
	}
	for k := range s.val {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		if v == 0 {
			return nil, fmt.Errorf("%w: stored zero at entry %d", ErrDecode, k)
		}
		s.val[k] = v
	}
	return s, nil
}
