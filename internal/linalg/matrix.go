// Package linalg provides the dense linear-algebra kernel used throughout
// the repository: matrices, vectors, Cholesky and QR factorizations, a
// one-sided Jacobi SVD, Moore-Penrose pseudo-inverses and least-squares
// solvers.
//
// The package is deliberately small and self-contained (standard library
// only). Matrices are stored row-major in a single backing slice; all
// dimensions involved in this reproduction are modest (at most a few
// hundred rows/columns), so clarity is favoured over blocking or SIMD
// tricks, while still keeping the obvious O(n^3) algorithms cache-friendly
// by iterating row-major.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned (wrapped) when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Use NewMatrix or NewMatrixFromRows
// to construct one with storage.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewMatrix returns a zero-filled r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFromRows builds a matrix from a slice of equal-length rows.
// The data is copied.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := NewMatrix(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix's backing storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	m.ColInto(j, out)
	return out
}

// ColInto copies column j into dst, which must have length Rows. It is
// the allocation-free form of Col for hot loops that walk many columns
// (the pseudo-inverse application in estimation and the column solves in
// Cholesky.SolveMatrix reuse one buffer across all columns).
func (m *Matrix) ColInto(j int, dst []float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: ColInto dst of %d, want %d rows", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = m.data[i*m.cols+j]
	}
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: SetRow length %d != %d cols", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddM returns m + b as a new matrix.
func (m *Matrix) AddM(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: add %dx%d and %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// SubM returns m - b as a new matrix.
func (m *Matrix) SubM(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: sub %dx%d and %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	// i-k-j loop order keeps both inner accesses sequential.
	for i := 0; i < m.rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: mulvec %dx%d by vector of %d", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	m.MulVecTo(out, x)
	return out, nil
}

// MulVecTo computes dst = m * x without allocating, panicking on shape
// mismatch. Together with TMulVecTo it lets *Matrix satisfy the Op
// interface of the iterative solvers.
func (m *Matrix) MulVecTo(dst, x []float64) {
	if m.cols != len(x) || len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: MulVecTo %dx%d with x of %d, dst of %d", m.rows, m.cols, len(x), len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// TMulVec returns the product of the transpose, mᵀ * x, without forming
// the transpose.
func (m *Matrix) TMulVec(x []float64) ([]float64, error) {
	if m.rows != len(x) {
		return nil, fmt.Errorf("%w: tmulvec (%dx%d)ᵀ by vector of %d", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.cols)
	m.TMulVecTo(out, x)
	return out, nil
}

// TMulVecTo computes dst = mᵀ * x without allocating, panicking on
// shape mismatch (the error-returning form is TMulVec).
func (m *Matrix) TMulVecTo(dst, x []float64) {
	if m.rows != len(x) || len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: TMulVecTo (%dx%d)ᵀ with x of %d, dst of %d", m.rows, m.cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// AtA returns mᵀ * m computed directly (exploiting symmetry).
func (m *Matrix) AtA() *Matrix {
	n := m.cols
	out := NewMatrix(n, n)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for a := 0; a < n; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			orow := out.Row(a)
			for b := a; b < n; b++ {
				orow[b] += ra * row[b]
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			out.data[b*n+a] = out.data[a*n+b]
		}
	}
	return out
}

// AAt returns m * mᵀ computed directly (exploiting symmetry).
func (m *Matrix) AAt() *Matrix {
	n := m.rows
	out := NewMatrix(n, n)
	for a := 0; a < n; a++ {
		ra := m.Row(a)
		for b := a; b < n; b++ {
			v := Dot(ra, m.Row(b))
			out.data[a*n+b] = v
			out.data[b*n+a] = v
		}
	}
	return out
}

// FrobNorm returns the Frobenius norm of m.
func (m *Matrix) FrobNorm() float64 {
	return Norm2(m.data)
}

// MaxAbs returns the largest absolute element, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether m and b have identical shape and elements within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	const maxDim = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %dx%d", m.rows, m.cols)
	if m.rows > maxDim || m.cols > maxDim {
		return b.String()
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("\n  ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .4g ", m.At(i, j))
		}
	}
	return b.String()
}

// Data returns the backing slice (row-major). Mutations are visible in m.
func (m *Matrix) Data() []float64 { return m.data }
