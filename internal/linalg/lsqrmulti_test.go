package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// interleave packs k contiguous vectors (each length rows) into the
// interleaved k-wide layout the blocked kernels consume: out[j*k+c] is
// entry j of vector c.
func interleave(vecs [][]float64, rows, k int) []float64 {
	out := make([]float64, rows*k)
	for c, v := range vecs {
		for j := 0; j < rows; j++ {
			out[j*k+c] = v[j]
		}
	}
	return out
}

// randomVecs returns k random vectors of the given length, scaled by
// lane so the blocked solver's systems converge at staggered iteration
// counts (lane c is ~4^c larger than lane 0).
func randomVecs(r *rand.Rand, k, length int) [][]float64 {
	out := make([][]float64, k)
	scale := 1.0
	for c := range out {
		v := make([]float64, length)
		for j := range v {
			v[j] = r.NormFloat64() * scale
		}
		out[c] = v
		scale *= 4
	}
	return out
}

// TestMulMatToMatchesMulVecTo: column c of the blocked product must be
// bit-identical to MulVecTo on column c alone, for every lane-tile shape
// (k below, at, and straddling the 8/4/1 tile widths), including
// matrices with explicitly empty rows.
func TestMulMatToMatchesMulVecTo(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17} {
		for trial := 0; trial < 5; trial++ {
			m, n := 2+r.Intn(25), 2+r.Intn(25)
			a := randomSparseMatrix(r, m, n, 0.3)
			// Force an empty row: the gather must write +0 there in
			// every lane.
			for j := 0; j < n; j++ {
				a.Set(r.Intn(m), j, 0)
			}
			s := SparseFromDense(a)
			xs := randomVecs(r, k, n)
			dst := make([]float64, m*k)
			s.MulMatTo(dst, interleave(xs, n, k), k)
			want := make([]float64, m)
			for c := 0; c < k; c++ {
				s.MulVecTo(want, xs[c])
				for i := 0; i < m; i++ {
					if math.Float64bits(dst[i*k+c]) != math.Float64bits(want[i]) {
						t.Fatalf("k=%d trial %d: lane %d row %d: %g vs MulVecTo %g",
							k, trial, c, i, dst[i*k+c], want[i])
					}
				}
			}
		}
	}
}

// TestTMulMatToMatchesTMulVecTo: the transposed blocked product against
// TMulVecTo, lane by lane, bit for bit — including input vectors with
// exact zeros (TMulVecTo skips them; the gather must still match).
func TestTMulMatToMatchesTMulVecTo(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17} {
		for trial := 0; trial < 5; trial++ {
			m, n := 2+r.Intn(25), 2+r.Intn(25)
			a := randomSparseMatrix(r, m, n, 0.3)
			s := SparseFromDense(a)
			xs := randomVecs(r, k, m)
			for c := range xs {
				// Sprinkle exact zeros into the input: the scatter form
				// skips them outright.
				for j := range xs[c] {
					if r.Intn(4) == 0 {
						xs[c][j] = 0
					}
				}
			}
			dst := make([]float64, n*k)
			s.TMulMatTo(dst, interleave(xs, m, k), k)
			want := make([]float64, n)
			for c := 0; c < k; c++ {
				s.TMulVecTo(want, xs[c])
				for j := 0; j < n; j++ {
					if math.Float64bits(dst[j*k+c]) != math.Float64bits(want[j]) {
						t.Fatalf("k=%d trial %d: lane %d col %d: %g vs TMulVecTo %g",
							k, trial, c, j, dst[j*k+c], want[j])
					}
				}
			}
		}
	}
}

// lsqrMultiVsStandalone solves the k systems both blocked and one at a
// time with identical options and demands bit-identical solutions and
// reports.
func lsqrMultiVsStandalone(t *testing.T, s *Sparse, bs [][]float64, opts LSQRMultiOptions) {
	t.Helper()
	k := len(bs)
	dst := make([][]float64, k)
	for c := range dst {
		dst[c] = make([]float64, s.Cols())
	}
	reps, err := LSQRMulti(s, bs, dst, opts)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < k; c++ {
		want, wantRep, err := LSQR(s, bs[c], LSQROptions{
			Damp: opts.Damp, ATol: opts.ATol, BTol: opts.BTol,
			MaxIter: opts.MaxIter, X0: opts.X0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if reps[c] != wantRep {
			t.Fatalf("lane %d report %+v, standalone %+v", c, reps[c], wantRep)
		}
		for j := range want {
			if math.Float64bits(dst[c][j]) != math.Float64bits(want[j]) {
				t.Fatalf("lane %d x[%d] = %g, standalone %g", c, j, dst[c][j], want[j])
			}
		}
	}
}

// TestLSQRMultiMatchesLSQRBitwise is the blocked driver's core contract:
// every lane of a cold blocked solve is bit-identical — solution and
// report — to a standalone LSQR on that system, across block widths
// spanning the 8/4/1 lane tiles, with staggered per-lane convergence and
// an all-zero right-hand side in the mix.
func TestLSQRMultiMatchesLSQRBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	for _, k := range []int{1, 2, 3, 5, 8, 9, 13} {
		for trial := 0; trial < 4; trial++ {
			m, n := 4+r.Intn(24), 4+r.Intn(24)
			s := SparseFromDense(randomSparseMatrix(r, m, n, 0.3))
			bs := randomVecs(r, k, m)
			if k > 2 {
				// A zero lane converges instantly; the others must run on
				// unperturbed.
				for j := range bs[k-1] {
					bs[k-1][j] = 0
				}
			}
			lsqrMultiVsStandalone(t, s, bs, LSQRMultiOptions{})
		}
	}
}

// TestLSQRMultiWarmMatchesLSQR: a shared warm-start iterate X0 must give
// every lane the exact standalone warm solve, and re-entering a lane's
// own converged solution must exit in zero iterations.
func TestLSQRMultiWarmMatchesLSQR(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	for trial := 0; trial < 6; trial++ {
		m, n := 6+r.Intn(20), 6+r.Intn(20)
		s := SparseFromDense(randomSparseMatrix(r, m, n, 0.3))
		k := 2 + r.Intn(7)
		bs := randomVecs(r, k, m)
		x0, _, err := LSQR(s, bs[0], LSQROptions{})
		if err != nil {
			t.Fatal(err)
		}
		x0 = append([]float64(nil), x0...)
		lsqrMultiVsStandalone(t, s, bs, LSQRMultiOptions{X0: x0})

		// Re-entry on a consistent system (the routing-matrix regime the
		// warm series path lives in): warm-starting every lane from the
		// system's converged solution exits in at most one iteration —
		// zero when the true residual sits below the residual tolerance,
		// one re-certifying pass when the cold solve stopped on the
		// optimality test instead — with the solution unmoved. (The
		// strict zero-iteration exact re-entry is pinned by
		// TestLSQRWarmReentryInstant on a well-conditioned system.)
		xc := make([]float64, n)
		for j := range xc {
			xc[j] = r.NormFloat64()
		}
		bc, err := s.MulVec(xc)
		if err != nil {
			t.Fatal(err)
		}
		sol, solRep, err := LSQR(s, bc, LSQROptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !solRep.Converged {
			t.Fatalf("trial %d: consistent cold solve did not converge", trial)
		}
		sol = append([]float64(nil), sol...)
		same := make([][]float64, k)
		for c := range same {
			same[c] = bc
		}
		dst := make([][]float64, k)
		for c := range dst {
			dst[c] = make([]float64, n)
		}
		reps, err := LSQRMulti(s, same, dst, LSQRMultiOptions{X0: sol})
		if err != nil {
			t.Fatal(err)
		}
		for c, rep := range reps {
			if !rep.Converged || rep.Iterations > 1 {
				t.Fatalf("trial %d lane %d: converged re-entry report %+v", trial, c, rep)
			}
			if d := relDiff(dst[c], sol); d > 1e-9 {
				t.Fatalf("trial %d lane %d: re-entry moved x by %g", trial, c, d)
			}
		}
	}
}

// TestLSQRMultiDampedMatchesLSQR: the per-lane damping rotations must
// reproduce the standalone damped recurrence bit for bit.
func TestLSQRMultiDampedMatchesLSQR(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	for trial := 0; trial < 6; trial++ {
		m, n := 6+r.Intn(20), 6+r.Intn(20)
		s := SparseFromDense(randomSparseMatrix(r, m, n, 0.3))
		bs := randomVecs(r, 3+r.Intn(6), m)
		lsqrMultiVsStandalone(t, s, bs, LSQRMultiOptions{Damp: 0.5})
	}
}

// TestLSQRMultiWorkReuseBitwise: one LSQRMultiWork carried across solves
// of different shapes and block widths must never change a result —
// buffers are fully overwritten before being read.
func TestLSQRMultiWorkReuseBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	var wk LSQRMultiWork
	for trial := 0; trial < 8; trial++ {
		m, n := 4+r.Intn(24), 4+r.Intn(24)
		s := SparseFromDense(randomSparseMatrix(r, m, n, 0.3))
		k := 1 + r.Intn(9)
		bs := randomVecs(r, k, m)
		fresh := make([][]float64, k)
		reused := make([][]float64, k)
		for c := 0; c < k; c++ {
			fresh[c] = make([]float64, n)
			reused[c] = make([]float64, n)
		}
		freshReps, err := LSQRMulti(s, bs, fresh, LSQRMultiOptions{})
		if err != nil {
			t.Fatal(err)
		}
		reusedReps, err := LSQRMulti(s, bs, reused, LSQRMultiOptions{Work: &wk})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < k; c++ {
			if freshReps[c] != reusedReps[c] {
				t.Fatalf("trial %d lane %d: reports %+v vs %+v", trial, c, freshReps[c], reusedReps[c])
			}
			for j := range fresh[c] {
				if math.Float64bits(fresh[c][j]) != math.Float64bits(reused[c][j]) {
					t.Fatalf("trial %d lane %d: work reuse changed x[%d]", trial, c, j)
				}
			}
		}
	}
}

// TestLSQRMultiShapeErrors: every shape mismatch is an ErrShape, and an
// empty block is a no-op.
func TestLSQRMultiShapeErrors(t *testing.T) {
	s := SparseFromDense(randomSparseMatrix(rand.New(rand.NewSource(97)), 6, 4, 0.5))
	good := [][]float64{make([]float64, 6), make([]float64, 6)}
	dst := [][]float64{make([]float64, 4), make([]float64, 4)}
	cases := []struct {
		name string
		bs   [][]float64
		dst  [][]float64
		opts LSQRMultiOptions
	}{
		{"dst count", good, dst[:1], LSQRMultiOptions{}},
		{"b length", [][]float64{make([]float64, 5), good[1]}, dst, LSQRMultiOptions{}},
		{"dst length", good, [][]float64{make([]float64, 3), dst[1]}, LSQRMultiOptions{}},
		{"x0 length", good, dst, LSQRMultiOptions{X0: make([]float64, 7)}},
	}
	for _, tc := range cases {
		if _, err := LSQRMulti(s, tc.bs, tc.dst, tc.opts); !errors.Is(err, ErrShape) {
			t.Errorf("%s: err = %v, want ErrShape", tc.name, err)
		}
	}
	reps, err := LSQRMulti(s, nil, nil, LSQRMultiOptions{})
	if err != nil || reps != nil {
		t.Errorf("empty block: reps %v, err %v", reps, err)
	}
}
