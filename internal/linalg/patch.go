package linalg

import (
	"fmt"
	"math"
)

// RowEntries returns the stored column indices and values of row i as
// views into the matrix's backing arrays (do not mutate). Columns are in
// increasing order, the CSR invariant. It is the read side of the
// patching primitives: routing.Patch scans old rows through it to decide
// which stored entries a topology delta touches.
func (s *Sparse) RowEntries(i int) ([]int, []float64) {
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	return s.colIdx[lo:hi], s.val[lo:hi]
}

// Equal reports whether the two matrices have identical shape and
// bitwise-identical stored entries (same rows, cols, row extents, column
// indices, and float bit patterns, so NaN payloads and signed zeros are
// distinguished). It is the assertion backing the patched-equals-rebuilt
// invariant of routing.Patch.
func (s *Sparse) Equal(o *Sparse) bool {
	if s.rows != o.rows || s.cols != o.cols || len(s.val) != len(o.val) {
		return false
	}
	for i := 0; i <= s.rows; i++ {
		if s.rowPtr[i] != o.rowPtr[i] {
			return false
		}
	}
	for k := range s.val {
		if s.colIdx[k] != o.colIdx[k] || math.Float64bits(s.val[k]) != math.Float64bits(o.val[k]) {
			return false
		}
	}
	return true
}

// PatchRows builds a rows×cols matrix by reusing the receiver's rows
// wholesale and editing only where a change is declared — the
// copy-on-write path that lets a routing matrix absorb a topology delta
// without full reassembly.
//
// srcRow maps each output row to the receiver row it carries entries
// from (-1 starts the row empty). drop, if non-nil, filters the carried
// entries: a stored entry of source row src at column col is omitted
// when drop(src, col) is true. add lists extra entries per output row
// (nil for none): each add[r] must hold entries of Row r with strictly
// increasing in-range columns; zero-valued adds are dropped, matching
// NewSparse. An add column colliding with a surviving carried entry is a
// duplicate, exactly as in NewSparse.
//
// The output is bit-identical to NewSparse over the equivalent entry
// set — same canonical ordering, same dropped zeros — in O(nnz) with no
// sorting, because carried rows are already ordered and adds are merged
// in place.
func (s *Sparse) PatchRows(rows, cols int, srcRow []int, drop func(src, col int) bool, add [][]Coord) (*Sparse, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("%w: sparse %dx%d", ErrShape, rows, cols)
	}
	if len(srcRow) != rows {
		return nil, fmt.Errorf("%w: srcRow of %d for %d patched rows", ErrShape, len(srcRow), rows)
	}
	if add != nil && len(add) != rows {
		return nil, fmt.Errorf("%w: add rows of %d for %d patched rows", ErrShape, len(add), rows)
	}
	capHint := s.NNZ()
	for _, a := range add {
		capHint += len(a)
	}
	out := &Sparse{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, 0, capHint),
		val:    make([]float64, 0, capHint),
	}
	for r := 0; r < rows; r++ {
		var cc []int
		var cv []float64
		src := srcRow[r]
		switch {
		case src == -1:
			// fresh row
		case src >= 0 && src < s.rows:
			cc, cv = s.RowEntries(src)
		default:
			return nil, fmt.Errorf("%w: patched row %d sourced from row %d of a %dx%d matrix", ErrShape, r, src, s.rows, s.cols)
		}
		var adds []Coord
		if add != nil {
			adds = add[r]
		}
		ci, ai := 0, 0
		prevAddCol := -1
		for ci < len(cc) || ai < len(adds) {
			if ci < len(cc) && drop != nil && drop(src, cc[ci]) {
				ci++
				continue
			}
			if ai < len(adds) {
				a := adds[ai]
				if a.Row != r {
					return nil, fmt.Errorf("%w: add entry (%d,%d) listed under patched row %d", ErrShape, a.Row, a.Col, r)
				}
				if a.Col < 0 || a.Col >= cols {
					return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrShape, a.Row, a.Col, rows, cols)
				}
				if a.Col <= prevAddCol {
					return nil, fmt.Errorf("%w: add entries of row %d not strictly increasing at col %d", ErrShape, r, a.Col)
				}
				if ci >= len(cc) || a.Col <= cc[ci] {
					if ci < len(cc) && a.Col == cc[ci] && a.Val != 0 {
						return nil, fmt.Errorf("%w: duplicate entry (%d,%d)", ErrShape, r, a.Col)
					}
					prevAddCol = a.Col
					ai++
					if a.Val != 0 {
						out.colIdx = append(out.colIdx, a.Col)
						out.val = append(out.val, a.Val)
					}
					continue
				}
			}
			if cc[ci] >= cols {
				return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrShape, r, cc[ci], rows, cols)
			}
			out.colIdx = append(out.colIdx, cc[ci])
			out.val = append(out.val, cv[ci])
			ci++
		}
		out.rowPtr[r+1] = len(out.val)
	}
	return out, nil
}
