package core

import "ictm/internal/tm"

// Fig2Example reproduces the worked example of Figure 2 in the paper:
// a three-node network (A, B, C) in which every node initiates one
// connection to each node (including a same-access-point connection),
// with equal forward and reverse volumes per connection of 100, 2 and 1
// packets for A, B and C respectively.
//
// In IC terms this is f = 1/2, uniform preferences, and activities
// A_i = 6·v_i (three connections, two directions of v_i packets each).
// The resulting OD matrix has X_ij = v_i + v_j, and the example's point
// is that P[E = j | I = i] varies strongly with i even though connection
// initiators and responders are independent — so packet-level
// ingress/egress independence (the gravity assumption) fails.
func Fig2Example() (*Params, *tm.TrafficMatrix) {
	vols := []float64{100, 2, 1} // per-direction packets for A, B, C
	n := len(vols)
	params := &Params{
		F:        0.5,
		Activity: make([]float64, n),
		Pref:     make([]float64, n),
	}
	for i, v := range vols {
		params.Activity[i] = 6 * v
		params.Pref[i] = 1
	}
	x := tm.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, vols[i]+vols[j])
		}
	}
	return params, x
}
