package core

import (
	"fmt"
	"math"

	"ictm/internal/linalg"
)

// Phi builds the n² x n linear operator of eq. 7: for fixed f and
// (normalized) preferences p, the model is linear in the activities,
// vec(X) = Φ·A, with
//
//	Φ[(i,j), k] = f·p_j·δ_{ki} + (1-f)·p_i·δ_{kj}
//
// Rows are ordered by the row-major OD pair index (see tm.PairIndex).
func Phi(f float64, pref []float64) (*linalg.Matrix, error) {
	n := len(pref)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty preference vector", ErrParams)
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return nil, fmt.Errorf("%w: f = %g", ErrParams, f)
	}
	var sum float64
	for i, v := range pref {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("%w: Pref[%d] = %g", ErrParams, i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: preference sum %g", ErrParams, sum)
	}
	phi := linalg.NewMatrix(n*n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row := phi.Row(i*n + j)
			row[i] += f * pref[j] / sum
			row[j] += (1 - f) * pref[i] / sum
		}
	}
	return phi, nil
}

// ActivityFromMarginals implements eq. 8: estimate the per-bin activities
// from ingress and egress node counts alone, given known (f, P). With
// Q the 2n x n² ingress/egress aggregation operator, QΦ is 2n x n and
//
//	Ã = (QΦ)⁺ · [ingress; egress]
//
// Since Q·vec(X) is exactly [ingress; egress], QΦ has the closed form
// derived from the model marginals:
//
//	(QΦ)[i, k]      = f·δ_{ki} + (1-f)·p_i     (ingress rows)
//	(QΦ)[n+i, k]    = f·p_i    + (1-f)·δ_{ki}  (egress rows)
//
// The function returns the estimated activities for one bin; callers loop
// over bins. Negative estimates (possible under noise) are clamped to 0.
func ActivityFromMarginals(f float64, pref, ingress, egress []float64) ([]float64, error) {
	n := len(pref)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty preference vector", ErrParams)
	}
	if len(ingress) != n || len(egress) != n {
		return nil, fmt.Errorf("%w: marginals %d/%d for n=%d", ErrParams, len(ingress), len(egress), n)
	}
	qphi, err := QPhi(f, pref)
	if err != nil {
		return nil, err
	}
	b := make([]float64, 2*n)
	copy(b[:n], ingress)
	copy(b[n:], egress)
	a, err := linalg.SolveMinNorm(qphi, b, 0)
	if err != nil {
		return nil, fmt.Errorf("core: activity pinv solve: %w", err)
	}
	for i, v := range a {
		if v < 0 {
			a[i] = 0
		}
	}
	return a, nil
}

// QPhi returns the 2n x n matrix Q·Φ used by eq. 8, built directly from
// its closed form rather than by multiplying the explicit Q and Φ.
func QPhi(f float64, pref []float64) (*linalg.Matrix, error) {
	n := len(pref)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty preference vector", ErrParams)
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return nil, fmt.Errorf("%w: f = %g", ErrParams, f)
	}
	var sum float64
	for i, v := range pref {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("%w: Pref[%d] = %g", ErrParams, i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: preference sum %g", ErrParams, sum)
	}
	out := linalg.NewMatrix(2*n, n)
	for i := 0; i < n; i++ {
		pi := pref[i] / sum
		ingRow := out.Row(i)
		egRow := out.Row(n + i)
		for k := 0; k < n; k++ {
			ingRow[k] = (1 - f) * pi
			egRow[k] = f * pi
		}
		ingRow[i] += f
		egRow[i] += 1 - f
	}
	return out, nil
}

// MarginalInversion implements the stable-f closed forms of eqs. 11-12:
// given only the network-wide f and one bin's ingress/egress counts,
// recover activity and preference estimates:
//
//	Ã_i         = (f·X_i* − (1−f)·X_*i) / (2f − 1)
//	P̃_i (∝)     = (f·X_*i − (1−f)·X_i*) / (2f − 1)
//
// Preferences are returned normalized to sum to one. Negative estimates
// (possible under noise or model mismatch) are clamped to zero before
// normalization. It returns ErrSingularF when |2f−1| is negligible.
func MarginalInversion(f float64, ingress, egress []float64) (activity, pref []float64, err error) {
	n := len(ingress)
	if n == 0 || len(egress) != n {
		return nil, nil, fmt.Errorf("%w: marginals %d/%d", ErrParams, len(ingress), len(egress))
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return nil, nil, fmt.Errorf("%w: f = %g", ErrParams, f)
	}
	den := 2*f - 1
	if math.Abs(den) < 1e-9 {
		return nil, nil, ErrSingularF
	}
	activity = make([]float64, n)
	pref = make([]float64, n)
	var psum float64
	for i := 0; i < n; i++ {
		a := (f*ingress[i] - (1-f)*egress[i]) / den
		if a < 0 {
			a = 0
		}
		activity[i] = a
		p := (f*egress[i] - (1-f)*ingress[i]) / den
		if p < 0 {
			p = 0
		}
		pref[i] = p
		psum += p
	}
	if psum > 0 {
		for i := range pref {
			pref[i] /= psum
		}
	} else {
		// Degenerate fallback: uniform preferences keep the model evaluable.
		for i := range pref {
			pref[i] = 1 / float64(n)
		}
	}
	return activity, pref, nil
}

// ConditionalEgressProb returns P[E = j | I = i] for the traffic
// matrix x: the fraction of traffic entering at i that leaves at j.
// It is the quantity the paper's Figure 2 example uses to show that
// packet-level independence fails under the IC model. Returns 0 when
// node i has no ingress traffic.
func ConditionalEgressProb(x interface {
	At(i, j int) float64
	N() int
}, i, j int) float64 {
	n := x.N()
	var rowSum float64
	for k := 0; k < n; k++ {
		rowSum += x.At(i, k)
	}
	if rowSum == 0 {
		return 0
	}
	return x.At(i, j) / rowSum
}
