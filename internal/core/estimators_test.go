package core

import (
	"errors"
	"math"
	"testing"

	"ictm/internal/linalg"
	"ictm/internal/rng"
)

// Phi must reproduce Evaluate: vec(X) == Φ·A.
func TestPhiMatchesEvaluate(t *testing.T) {
	p := rng.New(30)
	for trial := 0; trial < 30; trial++ {
		n := 2 + p.Intn(12)
		params := randParams(p, n)
		x, err := params.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		phi, err := Phi(params.F, params.Pref)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := phi.MulVec(params.Activity)
		if err != nil {
			t.Fatal(err)
		}
		if linalg.MaxAbsDiff(vec, x.Vec()) > 1e-9*(1+x.Norm()) {
			t.Fatalf("trial %d: Φ·A != vec(X)", trial)
		}
	}
}

func TestPhiRejectsBadInput(t *testing.T) {
	if _, err := Phi(0.2, nil); !errors.Is(err, ErrParams) {
		t.Error("empty pref must fail")
	}
	if _, err := Phi(-0.1, []float64{1}); !errors.Is(err, ErrParams) {
		t.Error("negative f must fail")
	}
	if _, err := Phi(0.2, []float64{0, 0}); !errors.Is(err, ErrParams) {
		t.Error("zero pref sum must fail")
	}
	if _, err := Phi(0.2, []float64{-1, 2}); !errors.Is(err, ErrParams) {
		t.Error("negative pref must fail")
	}
}

// QPhi's closed form must equal Q·Φ computed explicitly.
func TestQPhiMatchesExplicitProduct(t *testing.T) {
	p := rng.New(31)
	for trial := 0; trial < 20; trial++ {
		n := 2 + p.Intn(10)
		params := randParams(p, n)
		phi, err := Phi(params.F, params.Pref)
		if err != nil {
			t.Fatal(err)
		}
		// Build explicit Q: first n rows aggregate rows of X (ingress),
		// next n rows aggregate columns (egress).
		q := linalg.NewMatrix(2*n, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				q.Set(i, i*n+j, 1)   // ingress at i sums X_ij over j
				q.Set(n+j, i*n+j, 1) // egress at j sums X_ij over i
			}
		}
		want, err := q.Mul(phi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := QPhi(params.F, params.Pref)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-10) {
			t.Fatalf("trial %d: QPhi closed form != Q·Φ", trial)
		}
	}
}

// Eq. 8 must recover activities exactly from noise-free marginals
// (up to the rank of QΦ; for f != 1/2 and generic P the system is
// full rank and recovery is exact).
func TestActivityFromMarginalsRecovers(t *testing.T) {
	p := rng.New(32)
	for trial := 0; trial < 30; trial++ {
		n := 2 + p.Intn(15)
		params := randParams(p, n)
		if math.Abs(params.F-0.5) < 0.05 {
			params.F = 0.3 // keep away from the singular point
		}
		ing, eg, err := params.Marginals()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ActivityFromMarginals(params.F, params.Pref, ing, eg)
		if err != nil {
			t.Fatal(err)
		}
		scale := linalg.Norm2(params.Activity)
		if linalg.MaxAbsDiff(got, params.Activity) > 1e-6*scale {
			t.Fatalf("trial %d (n=%d, f=%.3f): recovery error %g", trial, n, params.F,
				linalg.MaxAbsDiff(got, params.Activity))
		}
	}
}

func TestActivityFromMarginalsShapeErrors(t *testing.T) {
	if _, err := ActivityFromMarginals(0.3, nil, nil, nil); !errors.Is(err, ErrParams) {
		t.Error("empty input must fail")
	}
	if _, err := ActivityFromMarginals(0.3, []float64{1, 1}, []float64{1}, []float64{1, 1}); !errors.Is(err, ErrParams) {
		t.Error("marginal length mismatch must fail")
	}
}

// Eqs. 11-12 must exactly invert noise-free model marginals.
func TestMarginalInversionRecovers(t *testing.T) {
	p := rng.New(33)
	for trial := 0; trial < 30; trial++ {
		n := 2 + p.Intn(15)
		params := randParams(p, n)
		if math.Abs(params.F-0.5) < 0.1 {
			params.F = 0.25
		}
		ing, eg, err := params.Marginals()
		if err != nil {
			t.Fatal(err)
		}
		act, pref, err := MarginalInversion(params.F, ing, eg)
		if err != nil {
			t.Fatal(err)
		}
		scale := linalg.Norm2(params.Activity)
		if linalg.MaxAbsDiff(act, params.Activity) > 1e-8*scale {
			t.Fatalf("trial %d: activity recovery error %g", trial,
				linalg.MaxAbsDiff(act, params.Activity))
		}
		wantPref := params.NormalizedPref()
		if linalg.MaxAbsDiff(pref, wantPref) > 1e-10 {
			t.Fatalf("trial %d: pref recovery error %g", trial,
				linalg.MaxAbsDiff(pref, wantPref))
		}
	}
}

func TestMarginalInversionSingularF(t *testing.T) {
	_, _, err := MarginalInversion(0.5, []float64{1, 2}, []float64{2, 1})
	if !errors.Is(err, ErrSingularF) {
		t.Errorf("f=0.5: err = %v, want ErrSingularF", err)
	}
}

func TestMarginalInversionClampsNegative(t *testing.T) {
	// Inconsistent (non-model) marginals can give negative raw estimates;
	// the result must still be non-negative with normalized preferences.
	act, pref, err := MarginalInversion(0.2, []float64{10, 0.1}, []float64{0.1, 10})
	if err != nil {
		t.Fatal(err)
	}
	var psum float64
	for i := range act {
		if act[i] < 0 || pref[i] < 0 {
			t.Errorf("negative output: act=%v pref=%v", act, pref)
		}
		psum += pref[i]
	}
	if math.Abs(psum-1) > 1e-12 {
		t.Errorf("pref sum = %g, want 1", psum)
	}
}

func TestMarginalInversionDegenerate(t *testing.T) {
	// All-zero marginals: uniform preference fallback.
	_, pref, err := MarginalInversion(0.2, []float64{0, 0}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pref[0]-0.5) > 1e-12 || math.Abs(pref[1]-0.5) > 1e-12 {
		t.Errorf("degenerate pref = %v, want uniform", pref)
	}
}

// Round trip: eqs. 11-12 output evaluated through the model reproduces
// the original matrix when the source was exactly IC.
func TestMarginalInversionRoundTrip(t *testing.T) {
	p := rng.New(34)
	params := randParams(p, 12)
	params.F = 0.25
	x, err := params.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	act, pref, err := MarginalInversion(params.F, x.Ingress(), x.Egress())
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := (&Params{F: params.F, Activity: act, Pref: pref}).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for k := range x.Vec() {
		if math.Abs(x.Vec()[k]-rebuilt.Vec()[k]) > 1e-7*(1+x.Norm()) {
			t.Fatalf("roundtrip mismatch at %d: %g vs %g", k, x.Vec()[k], rebuilt.Vec()[k])
		}
	}
}
