package core

import (
	"fmt"

	"ictm/internal/tm"
)

// Variant identifies one of the paper's temporal model variants
// (eqs. 3-5).
type Variant int

const (
	// TimeVarying lets f, A and P all change per bin (eq. 3).
	TimeVarying Variant = iota
	// StableF holds f constant in time; A and P vary (eq. 4).
	StableF
	// StableFP holds both f and P constant; only A varies (eq. 5).
	StableFP
)

// String returns the variant's conventional name.
func (v Variant) String() string {
	switch v {
	case TimeVarying:
		return "time-varying"
	case StableF:
		return "stable-f"
	case StableFP:
		return "stable-fP"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// DegreesOfFreedom returns the number of free inputs the variant needs
// for a network of n nodes over T bins, as tabulated in Section 5.1:
// time-varying 3nT, stable-f 2nT+1, stable-fP nT+n+1. (For comparison the
// gravity model needs 2nT-1.)
func (v Variant) DegreesOfFreedom(n, T int) int {
	switch v {
	case TimeVarying:
		return 3 * n * T
	case StableF:
		return 2*n*T + 1
	case StableFP:
		return n*T + n + 1
	default:
		return 0
	}
}

// GravityDegreesOfFreedom returns the gravity model's input count for a
// network of n nodes over T bins (2nT - 1; the grand total ties ingress
// to egress).
func GravityDegreesOfFreedom(n, T int) int { return 2*n*T - 1 }

// SeriesParams holds fitted or specified IC parameters for a whole time
// series under one of the temporal variants. Fields that the variant
// holds constant use the scalar/single-slice forms; per-bin fields are
// indexed [t].
type SeriesParams struct {
	Variant Variant
	N       int
	T       int

	// F is used by StableF and StableFP.
	F float64
	// FPerBin is used by TimeVarying.
	FPerBin []float64

	// Pref is used by StableFP.
	Pref []float64
	// PrefPerBin is used by TimeVarying and StableF.
	PrefPerBin [][]float64

	// Activity is always per bin: Activity[t][i].
	Activity [][]float64
}

// Validate checks shape consistency for the declared variant.
func (sp *SeriesParams) Validate() error {
	if sp.N <= 0 || sp.T <= 0 {
		return fmt.Errorf("%w: N=%d T=%d", ErrParams, sp.N, sp.T)
	}
	if len(sp.Activity) != sp.T {
		return fmt.Errorf("%w: %d activity bins, want %d", ErrParams, len(sp.Activity), sp.T)
	}
	for t, a := range sp.Activity {
		if len(a) != sp.N {
			return fmt.Errorf("%w: activity bin %d has %d nodes, want %d", ErrParams, t, len(a), sp.N)
		}
	}
	switch sp.Variant {
	case TimeVarying:
		if len(sp.FPerBin) != sp.T {
			return fmt.Errorf("%w: %d f bins, want %d", ErrParams, len(sp.FPerBin), sp.T)
		}
		if len(sp.PrefPerBin) != sp.T {
			return fmt.Errorf("%w: %d pref bins, want %d", ErrParams, len(sp.PrefPerBin), sp.T)
		}
	case StableF:
		if len(sp.PrefPerBin) != sp.T {
			return fmt.Errorf("%w: %d pref bins, want %d", ErrParams, len(sp.PrefPerBin), sp.T)
		}
	case StableFP:
		if len(sp.Pref) != sp.N {
			return fmt.Errorf("%w: %d prefs, want %d", ErrParams, len(sp.Pref), sp.N)
		}
	default:
		return fmt.Errorf("%w: unknown variant %d", ErrParams, int(sp.Variant))
	}
	return nil
}

// BinParams assembles the effective simplified-model parameters at bin t.
func (sp *SeriesParams) BinParams(t int) (*Params, error) {
	if t < 0 || t >= sp.T {
		return nil, fmt.Errorf("%w: bin %d out of [0,%d)", ErrParams, t, sp.T)
	}
	p := &Params{Activity: sp.Activity[t]}
	switch sp.Variant {
	case TimeVarying:
		p.F = sp.FPerBin[t]
		p.Pref = sp.PrefPerBin[t]
	case StableF:
		p.F = sp.F
		p.Pref = sp.PrefPerBin[t]
	case StableFP:
		p.F = sp.F
		p.Pref = sp.Pref
	default:
		return nil, fmt.Errorf("%w: unknown variant %d", ErrParams, int(sp.Variant))
	}
	return p, nil
}

// EvaluateSeries materializes the full traffic-matrix series implied by
// the parameters.
func (sp *SeriesParams) EvaluateSeries(binSeconds int) (*tm.Series, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	out := tm.NewSeries(sp.N, binSeconds)
	for t := 0; t < sp.T; t++ {
		p, err := sp.BinParams(t)
		if err != nil {
			return nil, err
		}
		m, err := p.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("bin %d: %w", t, err)
		}
		if err := out.Append(m); err != nil {
			return nil, err
		}
	}
	return out, nil
}
