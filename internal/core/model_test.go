package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"ictm/internal/rng"
	"ictm/internal/tm"
)

// randParams draws a random valid parameter set with n nodes.
func randParams(p *rng.PCG, n int) *Params {
	out := &Params{
		F:        0.05 + 0.9*p.Float64(),
		Activity: make([]float64, n),
		Pref:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		out.Activity[i] = p.LogNormal(10, 1)
		out.Pref[i] = p.LogNormal(-4.3, 1.7)
	}
	return out
}

func TestValidate(t *testing.T) {
	good := &Params{F: 0.25, Activity: []float64{1, 2}, Pref: []float64{0.5, 0.5}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []*Params{
		{F: 0.25, Activity: nil, Pref: nil},
		{F: 0.25, Activity: []float64{1}, Pref: []float64{1, 2}},
		{F: -0.1, Activity: []float64{1}, Pref: []float64{1}},
		{F: 1.1, Activity: []float64{1}, Pref: []float64{1}},
		{F: math.NaN(), Activity: []float64{1}, Pref: []float64{1}},
		{F: 0.25, Activity: []float64{-1}, Pref: []float64{1}},
		{F: 0.25, Activity: []float64{1}, Pref: []float64{-1}},
		{F: 0.25, Activity: []float64{1}, Pref: []float64{0}},
	}
	for k, c := range cases {
		if err := c.Validate(); !errors.Is(err, ErrParams) {
			t.Errorf("case %d: err = %v, want ErrParams", k, err)
		}
	}
}

func TestNormalizedPref(t *testing.T) {
	p := &Params{F: 0.2, Activity: []float64{1, 1}, Pref: []float64{2, 6}}
	norm := p.NormalizedPref()
	if math.Abs(norm[0]-0.25) > 1e-15 || math.Abs(norm[1]-0.75) > 1e-15 {
		t.Errorf("NormalizedPref = %v", norm)
	}
}

func TestEvaluateHandChecked(t *testing.T) {
	// n=2, f=0.25, A=(8,4), P=(0.5,0.5) normalized.
	// X_01 = 0.25*8*0.5 + 0.75*4*0.5 = 1 + 1.5 = 2.5
	// X_10 = 0.25*4*0.5 + 0.75*8*0.5 = 0.5 + 3 = 3.5
	// X_00 = 0.25*8*0.5 + 0.75*8*0.5 = 4; X_11 = 2.
	p := &Params{F: 0.25, Activity: []float64{8, 4}, Pref: []float64{1, 1}}
	x, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{4, 2.5}, {3.5, 2}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(x.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("X[%d][%d] = %g, want %g", i, j, x.At(i, j), want[i][j])
			}
		}
	}
}

// Conservation property: total traffic equals total activity (every byte
// of every connection is attributed to its initiator's activity).
func TestConservationProperty(t *testing.T) {
	p := rng.New(20)
	for trial := 0; trial < 50; trial++ {
		n := 2 + p.Intn(20)
		params := randParams(p, n)
		x, err := params.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		var sa float64
		for _, a := range params.Activity {
			sa += a
		}
		if rel := math.Abs(x.Total()-sa) / sa; rel > 1e-12 {
			t.Fatalf("trial %d: total %g != activity sum %g", trial, x.Total(), sa)
		}
	}
}

// Marginal property: Marginals() matches the explicit matrix's row and
// column sums (validates eq. 10 against eq. 2).
func TestMarginalsMatchMatrix(t *testing.T) {
	p := rng.New(21)
	for trial := 0; trial < 50; trial++ {
		n := 2 + p.Intn(15)
		params := randParams(p, n)
		x, err := params.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		ing, eg, err := params.Marginals()
		if err != nil {
			t.Fatal(err)
		}
		xin, xeg := x.Ingress(), x.Egress()
		for i := 0; i < n; i++ {
			if math.Abs(ing[i]-xin[i]) > 1e-9*(1+xin[i]) {
				t.Fatalf("trial %d: ingress[%d] %g != %g", trial, i, ing[i], xin[i])
			}
			if math.Abs(eg[i]-xeg[i]) > 1e-9*(1+xeg[i]) {
				t.Fatalf("trial %d: egress[%d] %g != %g", trial, i, eg[i], xeg[i])
			}
		}
	}
}

// Symmetry property: with f = 1/2 the model matrix is symmetric.
func TestHalfFSymmetry(t *testing.T) {
	p := rng.New(22)
	params := randParams(p, 10)
	params.F = 0.5
	x, err := params.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if math.Abs(x.At(i, j)-x.At(j, i)) > 1e-9 {
				t.Fatalf("f=1/2 matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// Scale property: scaling all activities by c scales the matrix by c.
func TestActivityScalingQuick(t *testing.T) {
	f := func(seed uint64, scaleRaw float64) bool {
		scale := 0.1 + math.Mod(math.Abs(scaleRaw), 10)
		if math.IsNaN(scale) {
			return true
		}
		p := rng.New(seed)
		params := randParams(p, 5)
		x1, err := params.Evaluate()
		if err != nil {
			return false
		}
		scaled := params.Clone()
		for i := range scaled.Activity {
			scaled.Activity[i] *= scale
		}
		x2, err := scaled.Evaluate()
		if err != nil {
			return false
		}
		for k, v := range x1.Vec() {
			if math.Abs(v*scale-x2.Vec()[k]) > 1e-9*(1+math.Abs(v*scale)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Preference-normalization property: scaling P leaves the model invariant.
func TestPrefScaleInvarianceQuick(t *testing.T) {
	f := func(seed uint64, scaleRaw float64) bool {
		scale := 0.1 + math.Mod(math.Abs(scaleRaw), 100)
		if math.IsNaN(scale) {
			return true
		}
		p := rng.New(seed)
		params := randParams(p, 6)
		x1, err := params.Evaluate()
		if err != nil {
			return false
		}
		scaled := params.Clone()
		for i := range scaled.Pref {
			scaled.Pref[i] *= scale
		}
		x2, err := scaled.Evaluate()
		if err != nil {
			return false
		}
		for k, v := range x1.Vec() {
			if math.Abs(v-x2.Vec()[k]) > 1e-9*(1+math.Abs(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFig2Example(t *testing.T) {
	params, x := Fig2Example()
	// The paper's quoted conditional probabilities.
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 200.0 / 403},
		{1, 0, 102.0 / 109},
		{2, 0, 101.0 / 106},
	}
	for _, c := range cases {
		got := ConditionalEgressProb(x, c.i, c.j)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P[E=%d|I=%d] = %g, want %g", c.j, c.i, got, c.want)
		}
	}
	if tot := x.Total(); tot != 618 {
		t.Errorf("total = %g, want 618", tot)
	}
	// The example matrix must equal the IC-model evaluation of its params.
	ev, err := params.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(ev.At(i, j)-x.At(i, j)) > 1e-9 {
				t.Errorf("model X[%d][%d] = %g, example %g", i, j, ev.At(i, j), x.At(i, j))
			}
		}
	}
	// Marginal egress share of node A.
	if pa := x.Egress()[0] / x.Total(); math.Abs(pa-403.0/618) > 1e-12 {
		t.Errorf("P[E=A] = %g, want %g", pa, 403.0/618)
	}
}

func TestConditionalEgressProbZeroRow(t *testing.T) {
	x := tm.New(2)
	if got := ConditionalEgressProb(x, 0, 1); got != 0 {
		t.Errorf("zero-row conditional = %g, want 0", got)
	}
}

func TestGeneralModelReducesToSimplified(t *testing.T) {
	p := rng.New(23)
	params := randParams(p, 8)
	gen := &GeneralParams{
		F:        make([][]float64, 8),
		Activity: params.Activity,
		Pref:     params.Pref,
	}
	for i := range gen.F {
		gen.F[i] = make([]float64, 8)
		for j := range gen.F[i] {
			gen.F[i][j] = params.F
		}
	}
	want, err := params.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := gen.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Vec() {
		if math.Abs(want.Vec()[k]-got.Vec()[k]) > 1e-9 {
			t.Fatalf("general with constant f != simplified at %d", k)
		}
	}
}

func TestGeneralModelConservation(t *testing.T) {
	p := rng.New(24)
	n := 7
	gen := &GeneralParams{
		F:        make([][]float64, n),
		Activity: make([]float64, n),
		Pref:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		gen.Activity[i] = p.LogNormal(8, 1)
		gen.Pref[i] = p.Float64() + 0.01
		gen.F[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			gen.F[i][j] = p.Float64()
		}
	}
	x, err := gen.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	var sa float64
	for _, a := range gen.Activity {
		sa += a
	}
	if rel := math.Abs(x.Total()-sa) / sa; rel > 1e-12 {
		t.Errorf("general conservation: total %g vs ΣA %g", x.Total(), sa)
	}
}

func TestGeneralValidate(t *testing.T) {
	bad := &GeneralParams{
		F:        [][]float64{{0.2}},
		Activity: []float64{1, 2},
		Pref:     []float64{1, 1},
	}
	if err := bad.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("short F: err = %v", err)
	}
	bad2 := &GeneralParams{
		F:        [][]float64{{0.2, 1.5}, {0.2, 0.2}},
		Activity: []float64{1, 2},
		Pref:     []float64{1, 1},
	}
	if err := bad2.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("out-of-range f: err = %v", err)
	}
}

func TestSimplifyWeightedMean(t *testing.T) {
	gen := &GeneralParams{
		F:        [][]float64{{0.1, 0.1}, {0.3, 0.3}},
		Activity: []float64{3, 1},
		Pref:     []float64{1, 1},
	}
	s := gen.Simplify()
	// Weighted mean: (3*0.1*2 + 1*0.3*2) / (2*(3+1)) = (0.6+0.6)/8 = 0.15
	if math.Abs(s.F-0.15) > 1e-12 {
		t.Errorf("Simplify F = %g, want 0.15", s.F)
	}
}
