package core

import (
	"errors"
	"math"
	"testing"

	"ictm/internal/rng"
)

func validSeriesParams(variant Variant, n, T int, p *rng.PCG) *SeriesParams {
	sp := &SeriesParams{Variant: variant, N: n, T: T}
	sp.Activity = make([][]float64, T)
	for t := range sp.Activity {
		sp.Activity[t] = make([]float64, n)
		for i := range sp.Activity[t] {
			sp.Activity[t][i] = p.LogNormal(8, 0.5)
		}
	}
	prefs := func() []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = p.LogNormal(-4.3, 1.7)
		}
		return out
	}
	switch variant {
	case TimeVarying:
		sp.FPerBin = make([]float64, T)
		sp.PrefPerBin = make([][]float64, T)
		for t := 0; t < T; t++ {
			sp.FPerBin[t] = 0.2 + 0.1*p.Float64()
			sp.PrefPerBin[t] = prefs()
		}
	case StableF:
		sp.F = 0.25
		sp.PrefPerBin = make([][]float64, T)
		for t := 0; t < T; t++ {
			sp.PrefPerBin[t] = prefs()
		}
	case StableFP:
		sp.F = 0.25
		sp.Pref = prefs()
	}
	return sp
}

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{
		TimeVarying: "time-varying",
		StableF:     "stable-f",
		StableFP:    "stable-fP",
		Variant(9):  "Variant(9)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(v), got, want)
		}
	}
}

func TestDegreesOfFreedom(t *testing.T) {
	// Paper, Section 5.1: gravity 2nt-1, time-varying 3nt,
	// stable-f 2nt+1, stable-fP nt+n+1.
	n, T := 22, 2016
	if got := TimeVarying.DegreesOfFreedom(n, T); got != 3*n*T {
		t.Errorf("time-varying dof = %d", got)
	}
	if got := StableF.DegreesOfFreedom(n, T); got != 2*n*T+1 {
		t.Errorf("stable-f dof = %d", got)
	}
	if got := StableFP.DegreesOfFreedom(n, T); got != n*T+n+1 {
		t.Errorf("stable-fP dof = %d", got)
	}
	if got := GravityDegreesOfFreedom(n, T); got != 2*n*T-1 {
		t.Errorf("gravity dof = %d", got)
	}
	// The paper's key point: stable-fP needs about half the gravity inputs.
	if StableFP.DegreesOfFreedom(n, T) >= GravityDegreesOfFreedom(n, T) {
		t.Error("stable-fP should need fewer inputs than gravity")
	}
	if got := Variant(9).DegreesOfFreedom(n, T); got != 0 {
		t.Errorf("unknown variant dof = %d, want 0", got)
	}
}

func TestSeriesValidate(t *testing.T) {
	p := rng.New(40)
	for _, v := range []Variant{TimeVarying, StableF, StableFP} {
		sp := validSeriesParams(v, 5, 4, p)
		if err := sp.Validate(); err != nil {
			t.Errorf("%v: valid params rejected: %v", v, err)
		}
	}
	bad := validSeriesParams(StableFP, 5, 4, p)
	bad.Pref = bad.Pref[:3]
	if err := bad.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("short pref: err = %v", err)
	}
	bad2 := validSeriesParams(TimeVarying, 5, 4, p)
	bad2.FPerBin = bad2.FPerBin[:2]
	if err := bad2.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("short FPerBin: err = %v", err)
	}
	bad3 := validSeriesParams(StableF, 5, 4, p)
	bad3.Activity[2] = bad3.Activity[2][:3]
	if err := bad3.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("ragged activity: err = %v", err)
	}
	bad4 := validSeriesParams(StableF, 5, 4, p)
	bad4.Variant = Variant(7)
	if err := bad4.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("unknown variant: err = %v", err)
	}
}

func TestBinParamsSelectsVariantFields(t *testing.T) {
	p := rng.New(41)
	tv := validSeriesParams(TimeVarying, 4, 3, p)
	bp, err := tv.BinParams(1)
	if err != nil {
		t.Fatal(err)
	}
	if bp.F != tv.FPerBin[1] {
		t.Errorf("time-varying bin f = %g, want %g", bp.F, tv.FPerBin[1])
	}
	sfp := validSeriesParams(StableFP, 4, 3, p)
	bp, err = sfp.BinParams(2)
	if err != nil {
		t.Fatal(err)
	}
	if bp.F != sfp.F || &bp.Pref[0] != &sfp.Pref[0] {
		t.Error("stable-fP bin must share the stable pref vector")
	}
	if _, err := sfp.BinParams(5); !errors.Is(err, ErrParams) {
		t.Error("out-of-range bin must fail")
	}
}

func TestEvaluateSeries(t *testing.T) {
	p := rng.New(42)
	sp := validSeriesParams(StableFP, 6, 5, p)
	series, err := sp.EvaluateSeries(300)
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() != 5 || series.N() != 6 {
		t.Fatalf("series shape %dx%d", series.N(), series.Len())
	}
	// Each bin's total equals the bin's total activity.
	for tb := 0; tb < 5; tb++ {
		var sa float64
		for _, a := range sp.Activity[tb] {
			sa += a
		}
		if math.Abs(series.At(tb).Total()-sa) > 1e-9*sa {
			t.Errorf("bin %d: total %g != ΣA %g", tb, series.At(tb).Total(), sa)
		}
	}
}
