module ictm

go 1.24
