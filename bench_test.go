package ictm

import (
	"context"
	"testing"

	"ictm/internal/estimation"
	"ictm/internal/experiments"
	"ictm/internal/faults"
	"ictm/internal/fit"
	"ictm/internal/packet"
	"ictm/internal/routing"
	"ictm/internal/serve"
	"ictm/internal/store"
	"ictm/internal/synth"
	"ictm/internal/topology"
)

// Figure benchmarks regenerate each experiment of the paper end to end
// at a reduced scale (the figure pipelines are deterministic, so the
// shape conclusions match the full-scale runs in EXPERIMENTS.md; run
// cmd/icexperiments for paper scale).
const benchScale = 0.02

func benchFigure(b *testing.B, run func(*experiments.World) (*experiments.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := experiments.NewWorld(experiments.Config{Scale: benchScale})
		if _, err := run(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Example regenerates the 3-node worked example (Fig. 2).
func BenchmarkFig2Example(b *testing.B) { benchFigure(b, experiments.Fig2) }

// BenchmarkFig3FitImprovement regenerates the IC-vs-gravity fit
// comparison (Fig. 3).
func BenchmarkFig3FitImprovement(b *testing.B) { benchFigure(b, experiments.Fig3) }

// BenchmarkFig4TraceF regenerates the packet-trace f measurement (Fig. 4).
func BenchmarkFig4TraceF(b *testing.B) { benchFigure(b, experiments.Fig4) }

// BenchmarkFig5WeeklyF regenerates the weekly-f stability sweep (Fig. 5).
func BenchmarkFig5WeeklyF(b *testing.B) { benchFigure(b, experiments.Fig5) }

// BenchmarkFig6WeeklyP regenerates the weekly preference overlay (Fig. 6).
func BenchmarkFig6WeeklyP(b *testing.B) { benchFigure(b, experiments.Fig6) }

// BenchmarkFig7PCCDF regenerates the preference CCDF fits (Fig. 7).
func BenchmarkFig7PCCDF(b *testing.B) { benchFigure(b, experiments.Fig7) }

// BenchmarkFig8PvsEgress regenerates the preference-vs-egress scatter
// (Fig. 8).
func BenchmarkFig8PvsEgress(b *testing.B) { benchFigure(b, experiments.Fig8) }

// BenchmarkFig9ASeries regenerates the activity time-series extraction
// (Fig. 9).
func BenchmarkFig9ASeries(b *testing.B) { benchFigure(b, experiments.Fig9) }

// BenchmarkFig10Asymmetry regenerates the routing-asymmetry ablation
// (Fig. 10).
func BenchmarkFig10Asymmetry(b *testing.B) { benchFigure(b, experiments.Fig10) }

// BenchmarkFig11EstOptimal regenerates the all-parameters-measured
// estimation comparison (Fig. 11).
func BenchmarkFig11EstOptimal(b *testing.B) { benchFigure(b, experiments.Fig11) }

// BenchmarkFig12EstStableFP regenerates the previous-week-(f,P)
// estimation comparison (Fig. 12).
func BenchmarkFig12EstStableFP(b *testing.B) { benchFigure(b, experiments.Fig12) }

// BenchmarkFig13EstStableF regenerates the only-f-known estimation
// comparison (Fig. 13).
func BenchmarkFig13EstStableF(b *testing.B) { benchFigure(b, experiments.Fig13) }

// --- sequential-vs-parallel benchmarks of the concurrency layer ---
//
// The Workers option promises bit-identical results for any value, so
// these pairs measure pure wall-clock: the speedup of the parallel
// execution layer is benchmarked, not claimed.

// benchRunAll regenerates every figure with the given worker bound.
func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := experiments.NewWorld(experiments.Config{Scale: benchScale, Workers: workers})
		if _, err := experiments.RunAll(w, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllExperimentsSequential is the legacy path: one figure at
// a time, one bin at a time.
func BenchmarkRunAllExperimentsSequential(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllExperimentsParallel fans figures and estimation bins
// out over all CPUs.
func BenchmarkRunAllExperimentsParallel(b *testing.B) { benchRunAll(b, 0) }

// benchEstimationWorkers sweeps one synthetic week through the gravity
// pipeline with the given worker bound.
func benchEstimationWorkers(b *testing.B, workers int) {
	b.Helper()
	d := benchSeries(b, 22, 112)
	g, err := topology.Waxman(22, 0.6, 0.4, 1)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := routing.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	est, err := estimation.NewEstimator(rm, estimation.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateSeries(d.Series, GravityPrior{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimationRunSequential estimates bins one at a time.
func BenchmarkEstimationRunSequential(b *testing.B) { benchEstimationWorkers(b, 1) }

// BenchmarkEstimationRunParallel estimates bins on all CPUs.
func BenchmarkEstimationRunParallel(b *testing.B) { benchEstimationWorkers(b, 0) }

// --- micro-benchmarks of the hot kernels ---

func benchSeries(b *testing.B, n, bins int) *Dataset {
	b.Helper()
	sc := GeantLike()
	sc.N = n
	sc.BinsPerWeek = bins
	sc.Weeks = 1
	d, err := synth.Generate(sc)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkModelEvaluate measures one 22-node IC-model evaluation.
func BenchmarkModelEvaluate(b *testing.B) {
	d := benchSeries(b, 22, 14)
	params := &Params{F: 0.25, Activity: d.TrueActivity[0], Pref: d.TruePref}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := params.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitStableFPWeek measures fitting one (reduced) week.
func BenchmarkFitStableFPWeek(b *testing.B) {
	d := benchSeries(b, 22, 56)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.StableFP(d.Series, fit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActivityFromMarginals measures the eq. 8 pseudo-inverse
// recovery for n=22.
func BenchmarkActivityFromMarginals(b *testing.B) {
	d := benchSeries(b, 22, 14)
	x := d.Series.At(0)
	ing, eg := x.Ingress(), x.Egress()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ActivityFromMarginals(0.25, d.TruePref, ing, eg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTomogravityProject measures one projection step with a
// cached routing factorization (the per-bin cost of estimation).
func BenchmarkTomogravityProject(b *testing.B) {
	g, err := topology.Waxman(22, 0.6, 0.4, 1)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := routing.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := estimation.NewSolver(rm)
	if err != nil {
		b.Fatal(err)
	}
	d := benchSeries(b, 22, 14)
	x := d.Series.At(0)
	y, err := rm.LinkLoads(x)
	if err != nil {
		b.Fatal(err)
	}
	prior, err := GravityFromMarginals(x.Ingress(), x.Egress())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Project(prior, y); err != nil {
			b.Fatal(err)
		}
	}
}

// --- solver-startup benchmarks (eager dense SVD vs sparse-first) ---

// benchISPRouting builds the backbone-stub routing matrix of the
// ISPLike family at the given n.
func benchISPRouting(b *testing.B, n int) *RoutingMatrix {
	b.Helper()
	g, err := topology.BackboneStub(n, 0, synth.ISPLike(n).Seed)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := routing.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	return rm
}

// BenchmarkNewSolverSparse measures the default solver startup at n=50:
// O(nnz) bookkeeping, no factorization. The PR 3 acceptance criterion
// requires >= 10x over BenchmarkNewSolverDenseSVD at this scale.
func BenchmarkNewSolverSparse(b *testing.B) {
	rm := benchISPRouting(b, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimation.NewSolver(rm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewSolverDenseSVD measures the seed's startup on identical
// inputs: the eager Jacobi SVD of R that every run used to pay before a
// single bin was estimated (now reached only via FactorDense or the
// dense cross-check paths).
func BenchmarkNewSolverDenseSVD(b *testing.B) {
	rm := benchISPRouting(b, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver, err := estimation.NewSolver(rm)
		if err != nil {
			b.Fatal(err)
		}
		if err := solver.FactorDense(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ISP-like large-topology estimation benchmarks ---

// benchEstimationISPLike runs the full unweighted pipeline (solver
// startup + per-bin LSQR projection + IPF) over a reduced-bin ISPLike
// week at the given n. Infeasible for n in the hundreds before the
// sparse-first solver: the startup SVD alone was O((L+2n)²·n²).
func benchEstimationISPLike(b *testing.B, n int) {
	b.Helper()
	sc := synth.ISPLike(n)
	sc.BinsPerWeek = 7
	sc.Weeks = 1
	d, err := synth.Generate(sc)
	if err != nil {
		b.Fatal(err)
	}
	rm := benchISPRouting(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := estimation.NewEstimator(rm)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := est.EstimateSeries(d.Series, GravityPrior{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimationISPLike50 estimates a reduced ISPLike(50) week.
func BenchmarkEstimationISPLike50(b *testing.B) { benchEstimationISPLike(b, 50) }

// BenchmarkEstimationISPLike100 estimates a reduced ISPLike(100) week
// (the scale CI's bench-smoke step exercises every run).
func BenchmarkEstimationISPLike100(b *testing.B) { benchEstimationISPLike(b, 100) }

// BenchmarkEstimationISPLike200 estimates a reduced ISPLike(200) week —
// 40 000 OD flows per bin.
func BenchmarkEstimationISPLike200(b *testing.B) { benchEstimationISPLike(b, 200) }

// --- warm-started series benchmarks (blocked LSQRMulti vs per-bin) ---

// benchEstimateSeriesISPLike measures the steady-state series sweep the
// warm-start PR targets: a 32-bin ISPLike week (two full warm chunks)
// against a pre-built estimation session, solver startup excluded —
// unlike benchEstimationISPLike, which includes it. Workers is pinned to
// 1 so the pair compares solver paths, not scheduling.
func benchEstimateSeriesISPLike(b *testing.B, n int, warm bool) {
	b.Helper()
	sc := synth.ISPLike(n)
	sc.BinsPerWeek = 32
	sc.Weeks = 1
	d, err := synth.Generate(sc)
	if err != nil {
		b.Fatal(err)
	}
	rm := benchISPRouting(b, n)
	opts := []EstimatorOption{estimation.WithWorkers(1)}
	if warm {
		opts = append(opts, estimation.WithWarmStart(true))
	}
	est, err := estimation.NewEstimator(rm, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := est.EstimateSeries(d.Series, GravityPrior{})
		if err != nil {
			b.Fatal(err)
		}
		if warm && r.Stats.WarmStartedBins == 0 {
			b.Fatal("warm series never warm-started a bin")
		}
	}
}

// BenchmarkEstimateSeriesCold100 sweeps the 32-bin ISPLike(100) series
// through the default per-bin path (one standalone LSQR per bin).
func BenchmarkEstimateSeriesCold100(b *testing.B) { benchEstimateSeriesISPLike(b, 100, false) }

// BenchmarkEstimateSeriesWarm100 sweeps the same series through the
// warm-started blocked path (LSQRMulti blocks of 8, warm-chained within
// 16-bin chunks). The PR 8 acceptance gate pins the Cold/Warm ratio via
// benchcheck -min-ratio.
func BenchmarkEstimateSeriesWarm100(b *testing.B) { benchEstimateSeriesISPLike(b, 100, true) }

// BenchmarkEstimateSeriesCold200 is the cold path at n=200 (40 000 OD
// flows per bin).
func BenchmarkEstimateSeriesCold200(b *testing.B) { benchEstimateSeriesISPLike(b, 200, false) }

// BenchmarkEstimateSeriesWarm200 is the blocked warm path at n=200.
func BenchmarkEstimateSeriesWarm200(b *testing.B) { benchEstimateSeriesISPLike(b, 200, true) }

// --- topology-mutation benchmarks (incremental patch vs full rebuild) ---

// benchPatchSetup builds the live-mutation fixture: the ISPLike(100)
// backbone-stub graph, its routing matrix, an estimation session with
// registered priors, and a single-link flap delta (the first event of
// the scenario's deterministic failure schedule).
func benchPatchSetup(b *testing.B) (*Graph, *RoutingMatrix, *Estimator, TopologyDelta) {
	b.Helper()
	sc := synth.ISPLike(100)
	g, err := topology.BackboneStub(sc.N, 0, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := routing.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	est, err := estimation.NewEstimator(rm)
	if err != nil {
		b.Fatal(err)
	}
	for _, st := range benchPatchPriors() {
		if _, err := est.RegisterPrior(st); err != nil {
			b.Fatal(err)
		}
	}
	sched, err := synth.GenerateFlaps(sc, g, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g, rm, est, sched.Events[0].Down()
}

// benchPatchPriors is the registered calibration state both sides of the
// pair must end up holding (carried by Rebase, re-registered by the
// rebuild).
func benchPatchPriors() []PriorState {
	return []PriorState{{Name: "gravity"}, {Name: "ic-stable-f", F: 0.25}}
}

// BenchmarkTopologyPatch measures the live-mutation path a single-link
// failure costs an open estimation session: routing.Patch (2n Dijkstra
// sweeps + touched-pair recomputation instead of 2n²) followed by
// Estimator.Rebase (prior instances reused, nothing re-validated). The
// PR 6 acceptance criterion requires >= 10x over
// BenchmarkTopologyRebuild at this scale.
func BenchmarkTopologyPatch(b *testing.B) {
	g, rm, est, delta := benchPatchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm, _, err := routing.Patch(rm, g, delta)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := est.Rebase(pm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyRebuild measures the same mutation from scratch on
// identical inputs: apply the delta, rebuild the full routing matrix,
// open a fresh estimation session, and re-register the priors — the
// only way to follow a topology change before the delta pipeline.
func BenchmarkTopologyRebuild(b *testing.B) {
	g, _, _, delta := benchPatchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ng, _, err := g.Apply(delta)
		if err != nil {
			b.Fatal(err)
		}
		rm, err := routing.Build(ng)
		if err != nil {
			b.Fatal(err)
		}
		est, err := estimation.NewEstimator(rm)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range benchPatchPriors() {
			if _, err := est.RegisterPrior(st); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- weighted-projection benchmarks (dense SVD vs sparse LSQR) ---

// benchWeightedSetup builds the shared fixtures of the weighted
// projection pair: a 22-node routing solver plus one bin's observation
// and gravity prior (the default benchmark scale of the PR 2
// acceptance criterion).
func benchWeightedSetup(b *testing.B) (*estimation.Solver, *TrafficMatrix, []float64) {
	b.Helper()
	g, err := topology.Waxman(22, 0.6, 0.4, 1)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := routing.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := estimation.NewSolver(rm)
	if err != nil {
		b.Fatal(err)
	}
	d := benchSeries(b, 22, 14)
	x := d.Series.At(0)
	y, err := rm.LinkLoads(x)
	if err != nil {
		b.Fatal(err)
	}
	prior, err := GravityFromMarginals(x.Ingress(), x.Egress())
	if err != nil {
		b.Fatal(err)
	}
	return solver, prior, y
}

// BenchmarkProjectWeightedDense measures the legacy per-bin dense-SVD
// weighted projection (the pre-PR 2 implementation, kept as reference).
func BenchmarkProjectWeightedDense(b *testing.B) {
	solver, prior, y := benchWeightedSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.ProjectWeightedDense(prior, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProjectWeightedLSQR measures the sparse iterative fast path
// on identical inputs; the PR 2 acceptance criterion requires >= 10x
// over BenchmarkProjectWeightedDense at this scale.
func BenchmarkProjectWeightedLSQR(b *testing.B) {
	solver, prior, y := benchWeightedSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.ProjectWeighted(prior, y); err != nil {
			b.Fatal(err)
		}
	}
}

// --- fitter and generator worker-sweep benchmarks ---

// benchFitTimeVarying fits the fully time-varying variant with the
// given worker bound (results are bit-identical for any value, so the
// pair measures pure wall-clock).
func benchFitTimeVarying(b *testing.B, workers int) {
	b.Helper()
	d := benchSeries(b, 22, 56)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.TimeVarying(d.Series, fit.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitTimeVaryingSeq runs the per-bin fits one at a time.
func BenchmarkFitTimeVaryingSeq(b *testing.B) { benchFitTimeVarying(b, 1) }

// BenchmarkFitTimeVaryingPar fans the per-bin fits over all CPUs.
func BenchmarkFitTimeVaryingPar(b *testing.B) { benchFitTimeVarying(b, 0) }

// benchSynthGenerate realizes a one-week Geant-like scenario with the
// given worker bound.
func benchSynthGenerate(b *testing.B, workers int) {
	b.Helper()
	sc := GeantLike()
	sc.BinsPerWeek = 112
	sc.Weeks = 1
	sc.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthGenerateSeq generates bins one at a time.
func BenchmarkSynthGenerateSeq(b *testing.B) { benchSynthGenerate(b, 1) }

// BenchmarkSynthGeneratePar generates bins on all CPUs.
func BenchmarkSynthGeneratePar(b *testing.B) { benchSynthGenerate(b, 0) }

// BenchmarkRoutingBuild measures full ECMP routing-matrix construction
// for a 22-node Waxman topology.
func BenchmarkRoutingBuild(b *testing.B) {
	g, err := topology.Waxman(22, 0.6, 0.4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.Build(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceMatch measures 5-tuple matching + SYN orientation on a
// half-hour trace.
func BenchmarkTraceMatch(b *testing.B) {
	tr, err := packet.GenerateBidirectional(packet.TraceConfig{
		Duration: 1800, ConnRatePerSide: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := packet.Match(tr.AB, tr.BA)
		if len(m.Connections) == 0 {
			b.Fatal("no connections matched")
		}
	}
}

// BenchmarkIPF measures iterative proportional fitting on a 22-node
// matrix.
func BenchmarkIPF(b *testing.B) {
	d := benchSeries(b, 22, 14)
	x := d.Series.At(0)
	rows, cols := x.Ingress(), x.Egress()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := x.Clone()
		if _, err := estimation.IPF(work, rows, cols, 1e-9, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// benchEstimation runs the estimation pipeline over a small fixture with
// the given session options, for pipeline-variant ablations.
func benchEstimation(b *testing.B, opts ...EstimatorOption) {
	b.Helper()
	d := benchSeries(b, 12, 14)
	g, err := topology.Waxman(12, 0.6, 0.4, 2)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := routing.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	est, err := NewEstimator(rm, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateSeries(d.Series, GravityPrior{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEstimationWithIPF is the default pipeline (step 3 on).
func BenchmarkAblationEstimationWithIPF(b *testing.B) {
	benchEstimation(b)
}

// BenchmarkAblationEstimationNoIPF drops step 3 (IPF) to measure its
// cost share.
func BenchmarkAblationEstimationNoIPF(b *testing.B) {
	benchEstimation(b, WithSkipIPF(true))
}

// BenchmarkAblationEstimationWeighted swaps step 2 for the
// prior-weighted tomogravity variant (per-bin refactorization).
func BenchmarkAblationEstimationWeighted(b *testing.B) {
	benchEstimation(b, WithWeighted(true))
}

// BenchmarkAblationFitSimplified and ...FitGeneral compare the
// simplified (3-parameter-family) and general (per-pair f) fitters on
// the same series.
func BenchmarkAblationFitSimplified(b *testing.B) {
	d := benchSeries(b, 14, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.StableFP(d.Series, fit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFitGeneral(b *testing.B) {
	d := benchSeries(b, 14, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.General(d.Series, fit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFitTryMirror measures the mirror-guard's 2x cost.
func BenchmarkAblationFitTryMirror(b *testing.B) {
	d := benchSeries(b, 14, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.StableFP(d.Series, fit.Options{TryMirror: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving-engine benchmarks (registered handles vs inline v1) ---

// benchEngineBins builds the shared fixture of the engine pair: a
// GeantLike observation batch on the scenario's own topology.
func benchEngineBins(b *testing.B) (topology.Spec, []serve.Bin) {
	b.Helper()
	sc := synth.GeantLike()
	sc.BinsPerWeek = 14
	sc.Weeks = 1
	d, err := synth.Generate(sc)
	if err != nil {
		b.Fatal(err)
	}
	spec := sc.Topology()
	g, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	rm, err := routing.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	bins := make([]serve.Bin, d.Series.Len())
	for i := range bins {
		y, err := rm.LinkLoads(d.Series.At(i))
		if err != nil {
			b.Fatal(err)
		}
		bins[i] = serve.Bin{T: i, Y: y}
	}
	return spec, bins
}

// BenchmarkEngineRegisteredPrior measures the v2 session path: the
// topology and prior are registered once and every batch references
// them by handle — the steady-state per-request cost the register-once
// API is supposed to win on (the PR 5 acceptance criterion requires
// parity or better against BenchmarkEngineInlinePrior).
func BenchmarkEngineRegisteredPrior(b *testing.B) {
	spec, bins := benchEngineBins(b)
	engine := serve.NewEngine(1)
	if _, _, err := engine.RegisterTopology("bench", spec); err != nil {
		b.Fatal(err)
	}
	handle, _, err := engine.RegisterPrior("bench", estimation.PriorState{Name: "ic-stable-f", F: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	session := serve.SessionSpec{Topology: "bench", Prior: handle}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := engine.EstimateBatch(context.Background(), session, bins)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(bins) {
			b.Fatalf("%d estimates for %d bins", len(out), len(bins))
		}
	}
}

// BenchmarkEngineInlinePrior measures the v1 inline path on identical
// inputs: the topology descriptor and prior state are re-validated on
// every batch.
func BenchmarkEngineInlinePrior(b *testing.B) {
	spec, bins := benchEngineBins(b)
	engine := serve.NewEngine(1)
	stream := serve.StreamSpec{Topology: spec, Prior: estimation.PriorState{Name: "ic-stable-f", F: 0.25}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := engine.EstimateBatchInline(context.Background(), stream, bins)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(bins) {
			b.Fatalf("%d estimates for %d bins", len(out), len(bins))
		}
	}
}

// BenchmarkAblationRoutingRingVsWaxman compares routing-matrix build
// cost across topology families of equal size.
func BenchmarkAblationRoutingRing(b *testing.B) {
	g, err := topology.RingChords(22, 14, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.Build(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- robustness benchmarks (clean vs masked degraded solve) ---

// benchEstimateBinFixture builds the per-bin estimation fixture of the
// robustness pair: one GeantLike observation and an estimator on the
// scenario's own topology.
func benchEstimateBinFixture(b *testing.B) (*estimation.Estimator, *routing.Matrix, []float64) {
	b.Helper()
	sc := synth.GeantLike()
	sc.BinsPerWeek = 14
	sc.Weeks = 1
	d, err := synth.Generate(sc)
	if err != nil {
		b.Fatal(err)
	}
	g, err := sc.Topology().Build()
	if err != nil {
		b.Fatal(err)
	}
	rm, err := routing.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	y, err := rm.LinkLoads(d.Series.At(0))
	if err != nil {
		b.Fatal(err)
	}
	est, err := estimation.NewEstimator(rm)
	if err != nil {
		b.Fatal(err)
	}
	return est, rm, y
}

// BenchmarkEstimateBinClean measures one per-bin solve on a fully
// reported observation. The robustness PR's acceptance criterion pins
// this path: observation validation and the mask check must stay within
// 5% of the pre-fault-model cost (benchcheck -max-ratio 1.05 against
// BENCH_pr7.json).
func BenchmarkEstimateBinClean(b *testing.B) {
	est, _, y := benchEstimateBinFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := est.EstimateBin(estimation.GravityPrior{}, 0, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateBinLossy measures the same solve degraded by the
// lossy fault profile: ~20% of link reports are NaN, so every iteration
// takes the masked-LSQR path (row-masked operator, no dense fallback)
// instead of the clean projection.
func BenchmarkEstimateBinLossy(b *testing.B) {
	est, rm, y := benchEstimateBinFixture(b)
	faults.NewInjector(faults.Lossy(), 1, rm.L).Apply(0, y, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, diag, err := est.EstimateBin(estimation.GravityPrior{}, 0, y)
		if err != nil {
			b.Fatal(err)
		}
		if !diag.Degraded {
			b.Fatal("lossy observation did not degrade the solve")
		}
	}
}

// benchWarmOpenSpec is the restart-benchmark substrate: the ISP-like
// backbone at n=100, the same scale the solver benchmarks pin.
func benchWarmOpenSpec() topology.Spec { return synth.ISPLike(100).Topology() }

// BenchmarkEngineColdOpen measures a replica opening a registered
// session with nothing but the descriptor: a fresh engine pays the full
// routing.Build (plus solver construction) before it can serve — the
// restart cost the shared artifact store exists to avoid.
func BenchmarkEngineColdOpen(b *testing.B) {
	spec := benchWarmOpenSpec()
	state := estimation.PriorState{Name: "gravity"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := serve.NewEngine(1)
		if _, _, err := engine.RegisterTopology("bench", spec); err != nil {
			b.Fatal(err)
		}
		if _, _, err := engine.RegisterPrior("bench", state); err != nil {
			b.Fatal(err)
		}
		if s := engine.Stats(); s.RoutingBuilds != 1 {
			b.Fatalf("cold open paid %d routing builds, want 1", s.RoutingBuilds)
		}
	}
}

// BenchmarkEngineStoreWarmOpen measures the same session reopened from
// a pre-seeded shared store: a fresh engine per iteration warm-starts
// from disk — record walk, matrix decode, solver construction, zero
// routing.Build. The CI gate holds this at least 5x faster than
// BenchmarkEngineColdOpen (benchcheck -min-ratio; see BENCH_pr9.json).
func BenchmarkEngineStoreWarmOpen(b *testing.B) {
	spec := benchWarmOpenSpec()
	dir := b.TempDir()
	seedStore, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	seed := serve.NewEngine(1, serve.WithStore(seedStore))
	if _, _, err := seed.RegisterTopology("bench", spec); err != nil {
		b.Fatal(err)
	}
	if _, _, err := seed.RegisterPrior("bench", estimation.PriorState{Name: "gravity"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		engine := serve.NewEngine(1, serve.WithStore(st))
		topos, priors, err := engine.WarmStart()
		if err != nil {
			b.Fatal(err)
		}
		if topos != 1 || priors != 1 {
			b.Fatalf("warm start restored %d topologies, %d priors; want 1, 1", topos, priors)
		}
		if s := engine.Stats(); s.RoutingBuilds != 0 {
			b.Fatalf("warm open paid %d routing builds, want 0", s.RoutingBuilds)
		}
	}
}
