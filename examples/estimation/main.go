// TM estimation with IC priors (Section 6 of the paper): observe only
// link loads and node totals on a backbone, and reconstruct the full
// traffic matrix. The IC prior calibrated on last week's data beats the
// gravity prior.
//
// Run with: go run ./examples/estimation
package main

import (
	"fmt"
	"log"

	"ictm"
)

func main() {
	// Two weeks of traffic on a 12-PoP backbone (4-hourly bins to keep
	// the example fast).
	sc := ictm.GeantLike()
	sc.Name = "estimation-demo"
	sc.N = 12
	sc.BinsPerWeek = 42
	sc.Weeks = 2
	sc.Seed = 7

	d, err := ictm.GenerateScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	lastWeek, err := d.Week(0)
	if err != nil {
		log.Fatal(err)
	}
	thisWeek, err := d.Week(1)
	if err != nil {
		log.Fatal(err)
	}

	// Last week we could afford full flow monitoring: fit the IC model.
	calib, err := ictm.FitStableFP(lastWeek, ictm.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated on week 1: f = %.3f\n", calib.Params.F)

	// This week we only have SNMP link counts. Build the topology and
	// routing matrix the operator knows anyway.
	g, err := ictm.NewWaxman(sc.N, 0.6, 0.4, sc.Seed)
	if err != nil {
		log.Fatal(err)
	}
	rm, err := ictm.BuildRouting(g)
	if err != nil {
		log.Fatal(err)
	}

	// One estimation session owns the solver; priors are registered
	// calibration state referenced per call — the same register-once
	// shape the icserve HTTP API exposes as topology keys and prior
	// handles.
	est, err := ictm.NewEstimator(rm)
	if err != nil {
		log.Fatal(err)
	}
	stableFP, err := est.RegisterPrior(ictm.PriorState{
		Name: "ic-stable-fP", F: calib.Params.F, Pref: calib.Params.Pref,
	})
	if err != nil {
		log.Fatal(err)
	}
	stableF, err := est.RegisterPrior(ictm.PriorState{Name: "ic-stable-f", F: calib.Params.F})
	if err != nil {
		log.Fatal(err)
	}
	for _, prior := range []ictm.Prior{ictm.GravityPrior{}, stableFP, stableF} {
		r, err := est.EstimateSeries(thisWeek, prior)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  prior %-14s mean RelL2 = %.4f\n", prior.Name(), mean(r.Errors))
	}
	fmt.Println("\nthe IC priors use week-1 parameters plus this week's node totals only —")
	fmt.Println("no flow collection needed in week 2 (the paper's hybrid scenario).")
}

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
