// Synthetic TM generation with what-if analysis (Section 5.5 of the
// paper): generate a week of traffic matrices, then model a "flash
// crowd" by raising one node's preference and watch the load shift —
// something the gravity model cannot express because its inputs (node
// totals) are causally entangled.
//
// Run with: go run ./examples/synthgen
package main

import (
	"fmt"
	"log"

	"ictm"
)

func main() {
	// A small custom scenario: 10 PoPs, one week of hourly bins.
	sc := ictm.GeantLike()
	sc.Name = "what-if-demo"
	sc.N = 10
	sc.BinsPerWeek = 168
	sc.Weeks = 1
	sc.Seed = 42

	d, err := ictm.GenerateScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d bins over %d PoPs; total week volume %.3g bytes\n",
		d.Series.Len(), d.Series.N(), weekTotal(d.Series))

	// Fit the stable-fP model to the generated data — these are the
	// "physically meaningful" knobs an analyst would turn.
	res, err := ictm.FitStableFP(d.Series, ictm.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted f = %.3f, preference of node 0 = %.3f\n",
		res.Params.F, res.Params.Pref[0])

	// What-if: node 0 hosts a suddenly popular service. Triple its
	// preference, re-normalize, and regenerate the peak-hour matrix.
	peak := busiestBin(d.Series)
	base, err := binMatrix(res.Params, peak)
	if err != nil {
		log.Fatal(err)
	}

	flash := res.Params.Pref
	boosted := make([]float64, len(flash))
	copy(boosted, flash)
	boosted[0] *= 3
	hot := &ictm.Params{F: res.Params.F, Activity: res.Params.Activity[peak], Pref: boosted}
	hotX, err := hot.Evaluate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nflash crowd at node 0 (preference x3), peak bin %d:\n", peak)
	fmt.Printf("  egress at node 0: %.3g -> %.3g bytes (%.0f%% up)\n",
		base.Egress()[0], hotX.Egress()[0],
		100*(hotX.Egress()[0]-base.Egress()[0])/base.Egress()[0])
	fmt.Printf("  total traffic:    %.3g -> %.3g bytes (conserved: activity unchanged)\n",
		base.Total(), hotX.Total())

	// What-if 2: a holiday halves every activity level; preferences are
	// untouched, total scales linearly — the knobs are independent.
	half := make([]float64, len(res.Params.Activity[peak]))
	for i, a := range res.Params.Activity[peak] {
		half[i] = a / 2
	}
	holiday := &ictm.Params{F: res.Params.F, Activity: half, Pref: res.Params.Pref}
	holX, err := holiday.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nholiday (all activities halved): total %.3g -> %.3g\n",
		base.Total(), holX.Total())
}

func weekTotal(s *ictm.TMSeries) float64 {
	var total float64
	for t := 0; t < s.Len(); t++ {
		total += s.At(t).Total()
	}
	return total
}

func busiestBin(s *ictm.TMSeries) int {
	best, bestV := 0, 0.0
	for t := 0; t < s.Len(); t++ {
		if v := s.At(t).Total(); v > bestV {
			best, bestV = t, v
		}
	}
	return best
}

func binMatrix(sp *ictm.SeriesParams, t int) (*ictm.TrafficMatrix, error) {
	bp, err := sp.BinParams(t)
	if err != nil {
		return nil, err
	}
	return bp.Evaluate()
}
