// Forecasting future traffic matrices from one measured week (the
// paper's Sections 5.4-5.5): fit the stable-fP model, fit harmonic
// (cyclostationary) models to the per-node activity series, and
// synthesize the next week — the stable parameters f and P carry over,
// only activities are projected.
//
// Run with: go run ./examples/forecast
package main

import (
	"fmt"
	"log"
	"math"

	"ictm"
)

func main() {
	// "Measured" week: a generated recipe plays the role of collected
	// flow data (hourly bins, one week).
	recipe := ictm.GenRecipe{
		N:             12,
		T:             168,
		BinsPerDay:    24,
		Seed:          3,
		ResidualSigma: 0.12,
	}
	_, week1, err := ictm.GenerateRecipe(recipe)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: fit the IC model to the measured week.
	res, err := ictm.FitStableFP(week1, ictm.FitOptions{TryMirror: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("week 1 fit: f = %.3f, mean RelL2 = %.4f\n", res.Params.F, res.MeanRelL2)

	// Step 2: project a synthetic week 2 from the fit.
	week2, err := ictm.ExtendFromFit(res.Params, 24, 2, 168, 3600, 99)
	if err != nil {
		log.Fatal(err)
	}

	// Sanity: the forecast week keeps the weekly rhythm and volume.
	fmt.Printf("week 1 mean bin volume: %.3g bytes\n", meanTotal(week1))
	fmt.Printf("week 2 mean bin volume: %.3g bytes (forecast)\n", meanTotal(week2))

	// Peak-hour structure: busiest bins should align modulo 24 h.
	p1 := busiest(week1) % 24
	p2 := busiest(week2) % 24
	fmt.Printf("busiest hour of day: week1 = %d:00, forecast = %d:00\n", p1, p2)
	if d := math.Abs(float64(p1 - p2)); d <= 2 || d >= 22 {
		fmt.Println("forecast preserves the diurnal peak — usable for capacity planning")
	}
}

func meanTotal(s *ictm.TMSeries) float64 {
	var sum float64
	for t := 0; t < s.Len(); t++ {
		sum += s.At(t).Total()
	}
	return sum / float64(s.Len())
}

func busiest(s *ictm.TMSeries) int {
	best, bestV := 0, 0.0
	for t := 0; t < s.Len(); t++ {
		if v := s.At(t).Total(); v > bestV {
			best, bestV = t, v
		}
	}
	return best
}
