// Bidirectional trace analysis (Section 5.2 of the paper): generate an
// Abilene-style two-hour packet trace on a backbone link pair, match
// flows across directions by 5-tuple, orient connections by SYN, and
// measure the forward ratio f per 5-minute bin.
//
// Run with: go run ./examples/traceanalysis
package main

import (
	"fmt"
	"log"

	"ictm"
)

func main() {
	cfg := ictm.TraceConfig{
		Duration:            7200, // two hours, like the IPLS traces
		ConnRatePerSide:     4,
		PreexistingFraction: 0.06, // connections straddling the trace start
		Seed:                2002,
	}
	tr, err := ictm.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d flows eastbound, %d westbound\n", len(tr.AB), len(tr.BA))

	fAB, fBA, unknown, err := ictm.AnalyzeTrace(tr, cfg.Duration, 300)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-bin forward ratio (the paper's Fig. 4):")
	fmt.Printf("%-5s %-8s %-8s\n", "bin", "f A->B", "f B->A")
	for i := range fAB {
		fmt.Printf("%-5d %-8.3f %-8.3f\n", i, fAB[i].F, fBA[i].F)
	}

	trueA, trueB := tr.TrueF()
	fmt.Printf("\nground truth: %.3f / %.3f; unknown traffic %.1f%%\n",
		trueA, trueB, 100*unknown)

	fmt.Printf("application mix: %d classes (web-dominated)\n", len(ictm.DefaultAppMix()))
	fmt.Println("\nreadings in the 0.2-0.3 band justify the IC model's default f;")
	fmt.Println("the two directions agreeing supports spatial stability of f.")
}
