// Quickstart: build a traffic matrix from IC-model parameters, compare
// it with the gravity model's prediction, and recover the parameters
// back from the matrix's node totals.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ictm"
)

func main() {
	// A five-PoP network. Activities are "how much traffic users at
	// this PoP generate"; preferences are "how likely a connection is
	// to terminate at this PoP" (think: where the popular servers are).
	params := &ictm.Params{
		F:        0.25,                            // web-dominated mix: ~25% of bytes flow initiator->responder
		Activity: []float64{500, 120, 80, 40, 10}, // MB per bin
		Pref:     []float64{0.05, 0.60, 0.20, 0.10, 0.05},
	}
	x, err := params.Evaluate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("IC-model traffic matrix (MB):")
	printTM(x)

	// The gravity model reconstructs a matrix from the same node totals
	// but misses the bidirectional structure.
	grav, err := ictm.GravityFromMarginals(x.Ingress(), x.Egress())
	if err != nil {
		log.Fatal(err)
	}
	relErr, err := ictm.RelL2(x, grav)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngravity reconstruction error (RelL2): %.3f\n", relErr)

	// Because f != 1/2, the IC model can be inverted exactly from the
	// node totals alone (eqs. 11-12 of the paper).
	act, pref, err := ictm.MarginalInversion(params.F, x.Ingress(), x.Egress())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecovered from marginals (knowing only f):")
	fmt.Printf("  activities:  %v\n", rounded(act))
	fmt.Printf("  preferences: %v\n", rounded(pref))
}

func printTM(x *ictm.TrafficMatrix) {
	n := x.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			fmt.Printf("%8.1f", x.At(i, j))
		}
		fmt.Println()
	}
}

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
