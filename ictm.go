// Package ictm is the public facade of the independent-connection
// traffic-matrix library: a Go implementation of Erramilli, Crovella &
// Taft, "An Independent-Connection Model for Traffic Matrices"
// (IMC 2006), together with the substrates its evaluation needs.
//
// The facade re-exports the user-facing types from the internal
// packages so downstream code has a single import:
//
//	params := &ictm.Params{F: 0.25, Activity: acts, Pref: prefs}
//	x, err := params.Evaluate()           // build a TM from the model
//	res, err := ictm.FitStableFP(series)  // fit the model to data
//
//	est, err := ictm.NewEstimator(rm, ictm.WithWorkers(0))
//	r, err := est.EstimateSeries(truth, prior) // r.Estimates, r.Errors
//
// Sub-functionality map:
//
//   - model evaluation and closed-form estimators: Params, SeriesParams,
//     Phi, ActivityFromMarginals, MarginalInversion (internal/core)
//   - model fitting: FitStableFP, FitStableF, FitTimeVarying
//     (internal/fit)
//   - gravity baseline: GravityEstimate, GravityFromMarginals
//     (internal/gravity)
//   - synthetic scenarios: GenerateScenario, GeantLike, TotemLike,
//     ISPLike (internal/synth)
//   - topology + routing: NewWaxman, NewRingChords, NewBackboneStub,
//     BuildRouting (internal/topology, internal/routing)
//   - TM estimation: NewEstimator (sessions), priors, PriorState, IPF
//     (internal/estimation)
//   - packet traces: GenerateTrace, AnalyzeTrace (internal/packet)
//   - figure regeneration: RunAllExperiments (internal/experiments)
package ictm

import (
	"io"

	"ictm/internal/core"
	"ictm/internal/estimation"
	"ictm/internal/experiments"
	"ictm/internal/fit"
	"ictm/internal/gravity"
	"ictm/internal/packet"
	"ictm/internal/routing"
	"ictm/internal/synth"
	"ictm/internal/tm"
	"ictm/internal/tmgen"
	"ictm/internal/topology"
)

// Core model types.
type (
	// Params is one bin's simplified-IC-model parameter set (f, A, P).
	Params = core.Params
	// GeneralParams carries per-pair forward ratios (eq. 1).
	GeneralParams = core.GeneralParams
	// SeriesParams holds a fitted parameter set for a whole series.
	SeriesParams = core.SeriesParams
	// Variant selects among the temporal model variants (eqs. 3-5).
	Variant = core.Variant
)

// Temporal variants.
const (
	TimeVarying = core.TimeVarying
	StableF     = core.StableF
	StableFP    = core.StableFP
)

// Traffic-matrix data model.
type (
	// TrafficMatrix is a single-interval OD byte matrix.
	TrafficMatrix = tm.TrafficMatrix
	// TMSeries is a time series of traffic matrices.
	TMSeries = tm.Series
)

// NewTrafficMatrix returns a zero n x n traffic matrix.
func NewTrafficMatrix(n int) *TrafficMatrix { return tm.New(n) }

// NewTMSeries returns an empty series over n nodes.
func NewTMSeries(n, binSeconds int) *TMSeries { return tm.NewSeries(n, binSeconds) }

// RelL2 is the paper's per-bin relative L2 error metric (eq. 6).
func RelL2(truth, est *TrafficMatrix) (float64, error) { return tm.RelL2(truth, est) }

// RelL2Spatial is the per-OD-pair relative L2 error across time.
func RelL2Spatial(truth, est *TMSeries) ([]float64, error) { return tm.RelL2Spatial(truth, est) }

// ErrZeroTruth reports a relative error against an all-zero true matrix
// with a non-zero estimate (the metric is undefined).
var ErrZeroTruth = tm.ErrZeroTruth

// ErrZeroPair is RelL2Spatial's per-pair counterpart of ErrZeroTruth: a
// zero-energy OD pair with a non-zero estimate has no defined relative
// error.
var ErrZeroPair = tm.ErrZeroPair

// Closed-form estimators (eqs. 8, 11-12).
var (
	// ActivityFromMarginals recovers activities from node totals given
	// (f, P) via the eq. 8 pseudo-inverse.
	ActivityFromMarginals = core.ActivityFromMarginals
	// MarginalInversion recovers activities and preferences from node
	// totals given only f (eqs. 11-12); fails with ErrSingularF at f=1/2.
	MarginalInversion = core.MarginalInversion
	// Phi builds the linear operator of eq. 7.
	Phi = core.Phi
	// ErrSingularF reports the f = 1/2 singularity.
	ErrSingularF = core.ErrSingularF
)

// Fitting.
type (
	// FitOptions tune the alternating least-squares fitter.
	FitOptions = fit.Options
	// FitResult carries fitted parameters and diagnostics.
	FitResult = fit.Result
)

// FitStableFP fits the stable-fP variant (one f, one P, per-bin A).
func FitStableFP(s *TMSeries, opts FitOptions) (*FitResult, error) { return fit.StableFP(s, opts) }

// FitStableF fits the stable-f variant (one f, per-bin P and A).
func FitStableF(s *TMSeries, opts FitOptions) (*FitResult, error) { return fit.StableF(s, opts) }

// FitTimeVarying fits all parameters per bin.
func FitTimeVarying(s *TMSeries, opts FitOptions) (*FitResult, error) {
	return fit.TimeVarying(s, opts)
}

// GeneralFitResult carries a fitted general-IC parameter set (per-pair
// forward ratios).
type GeneralFitResult = fit.GeneralResult

// FitGeneral fits the general IC model (eq. 1) — per-pair forward
// ratios — the variant the paper prescribes for networks with severe
// routing asymmetry.
func FitGeneral(s *TMSeries, opts FitOptions) (*GeneralFitResult, error) {
	return fit.General(s, opts)
}

// Gravity baseline.
var (
	// GravityEstimate builds the gravity fit of a matrix from its own
	// marginals.
	GravityEstimate = gravity.Estimate
	// GravityFromMarginals builds the gravity matrix from explicit node
	// totals.
	GravityFromMarginals = gravity.FromMarginals
)

// Synthetic scenarios.
type (
	// Scenario specifies a synthetic ground-truth ensemble.
	Scenario = synth.Scenario
	// Dataset is a generated ensemble plus its latent parameters.
	Dataset = synth.Dataset
)

var (
	// GeantLike is the D1 (Géant) stand-in preset.
	GeantLike = synth.GeantLike
	// TotemLike is the D2 (Totem) stand-in preset.
	TotemLike = synth.TotemLike
	// ISPLike is the parameterized large-topology family: GeantLike's
	// marginal/diurnal shape targets generalized to arbitrary n (pair it
	// with NewBackboneStub(n, 0, seed)).
	ISPLike = synth.ISPLike
	// GenerateScenario realizes a scenario deterministically.
	GenerateScenario = synth.Generate
)

// Topology and routing.
type (
	// Graph is a weighted directed network graph.
	Graph = topology.Graph
	// RoutingMatrix relates OD flows to link loads (Y = R·x).
	RoutingMatrix = routing.Matrix
)

var (
	// NewWaxman generates a Waxman random topology.
	NewWaxman = topology.Waxman
	// NewRingChords generates a ring-plus-chords topology.
	NewRingChords = topology.RingChords
	// NewBackboneStub generates the ISP-style backbone-plus-stub
	// topology behind the ISPLike scenario family (core <= 0 selects the
	// default backbone size).
	NewBackboneStub = topology.BackboneStub
	// BuildRouting constructs the ECMP routing matrix for a graph,
	// assembled directly in sparse (CSR) form.
	BuildRouting = routing.Build
)

// Live topology mutation: deltas, incremental routing updates, and
// failure/maintenance schedules.
type (
	// TopologyDelta is an ordered batch of link mutations (add, remove,
	// reweight) applied with Graph.Apply or PatchRouting.
	TopologyDelta = topology.Delta
	// TopologyDeltaOp is one mutation of a TopologyDelta.
	TopologyDeltaOp = topology.DeltaOp
	// FlapEvent is one scheduled link outage window; FlapSchedule a
	// week's worth of them.
	FlapEvent = synth.FlapEvent
	// FlapSchedule is a deterministic failure/maintenance schedule.
	FlapSchedule = synth.FlapSchedule
)

var (
	// PatchRouting updates a routing matrix for a topology delta
	// incrementally — bit-identical to BuildRouting on the mutated
	// graph, recomputing only the OD pairs the delta touches. Pair it
	// with Estimator.Rebase to move a live estimation session onto the
	// new topology.
	PatchRouting = routing.Patch
	// GenerateFlaps schedules link-flap events over one scenario week.
	GenerateFlaps = synth.GenerateFlaps
)

// TM estimation.
type (
	// Prior produces a starting matrix per bin for TM estimation.
	Prior = estimation.Prior
	// GravityPrior is the baseline prior.
	GravityPrior = estimation.GravityPrior
	// ICOptimalPrior uses fully measured IC parameters (Fig. 11).
	ICOptimalPrior = estimation.ICOptimalPrior
	// StableFPPrior carries (f, P) from a previous week (Fig. 12).
	StableFPPrior = estimation.StableFPPrior
	// StableFPrior knows only f (Fig. 13).
	StableFPrior = estimation.StableFPrior
	// FanoutPrior is the choice-model baseline (calibrated per-origin
	// destination shares).
	FanoutPrior = estimation.FanoutPrior
	// EstimationOptions tune the deprecated free-function pipeline entry
	// points. New code configures an Estimator with functional options
	// (WithWorkers, WithWeighted, ...).
	EstimationOptions = estimation.Options
	// EstimationRunStats aggregates per-run IPF diagnostics.
	EstimationRunStats = estimation.RunStats

	// Estimator is the session-centric estimation entry point: built
	// once per routing matrix, it owns the tomogravity solver, the
	// worker bound, the link-noise policy and the IPF settings, and
	// exposes EstimateBin, EstimateSeries and Compare.
	Estimator = estimation.Estimator
	// EstimatorOption configures NewEstimator / Estimator.With.
	EstimatorOption = estimation.Option
	// EstimationSeriesResult is one prior's series sweep: estimates,
	// per-bin errors and aggregated diagnostics.
	EstimationSeriesResult = estimation.SeriesResult
	// PriorState is the serializable calibration state of a prior — what
	// a client registers once with the online estimation service (and
	// with Estimator.RegisterPrior) instead of re-shipping history.
	PriorState = estimation.PriorState
)

// Estimator options.
var (
	// WithWorkers bounds the per-bin (and, in Compare, per-prior)
	// fan-out: 0 = GOMAXPROCS, 1 = sequential; results are bit-identical
	// for every value.
	WithWorkers = estimation.WithWorkers
	// WithWeighted selects the prior-weighted tomogravity projection.
	WithWeighted = estimation.WithWeighted
	// WithWeightedDense selects the dense reference weighted projection.
	WithWeightedDense = estimation.WithWeightedDense
	// WithDense selects the dense reference unweighted projection.
	WithDense = estimation.WithDense
	// WithSkipIPF disables the marginal-fitting step 3.
	WithSkipIPF = estimation.WithSkipIPF
	// WithIPF tunes the proportional-fitting tolerance and sweep budget.
	WithIPF = estimation.WithIPF
	// WithLinkNoise injects seeded lognormal observation noise.
	WithLinkNoise = estimation.WithLinkNoise
	// WithWarmStart routes EstimateSeries through blocked multi-RHS
	// solves with cross-bin warm starts (~1.8x on long series; results
	// stay deterministic per worker count but differ bitwise from the
	// default per-bin path, so it is opt-in).
	WithWarmStart = estimation.WithWarmStart
)

// NewEstimator builds an estimation session for a routing matrix; see
// Estimator.
func NewEstimator(rm *RoutingMatrix, opts ...EstimatorOption) (*Estimator, error) {
	return estimation.NewEstimator(rm, opts...)
}

// NewFanoutPrior calibrates a fanout prior from a historical series.
var NewFanoutPrior = estimation.NewFanoutPrior

// EstimateTMs runs the three-step estimation pipeline over a series.
//
// Deprecated: use NewEstimator and Estimator.EstimateSeries, which
// return the same estimates and errors inside a SeriesResult.
func EstimateTMs(rm *RoutingMatrix, truth *TMSeries, prior Prior, opts EstimationOptions) (*TMSeries, []float64, error) {
	//lint:ignore SA1019 deprecated wrapper delegates to its deprecated twin so the Options conversion lives in one place
	return estimation.Run(rm, truth, prior, opts)
}

// IPF rescales a matrix to the given row/column totals (step 3). On
// non-convergence it returns an error wrapping ErrIPFNoConverge; the
// matrix still holds the last sweep's state.
var IPF = estimation.IPF

// ErrIPFNoConverge reports that IPF exhausted its sweep budget before
// reaching tolerance.
var ErrIPFNoConverge = estimation.ErrIPFNoConverge

// Packet traces (the D3 stand-in).
type (
	// TraceConfig drives the bidirectional trace generator.
	TraceConfig = packet.TraceConfig
	// Trace is a generated bidirectional flow trace.
	Trace = packet.Trace
	// FBin is a per-bin forward-ratio estimate.
	FBin = packet.FBin
)

var (
	// GenerateTrace synthesizes a bidirectional TCP flow trace.
	GenerateTrace = packet.GenerateBidirectional
	// AnalyzeTrace runs the Section 5.2 f-measurement methodology.
	AnalyzeTrace = packet.AnalyzeTrace
	// DefaultAppMix is the web-dominated application mix.
	DefaultAppMix = packet.DefaultMix
)

// Paper-style TM generation (Section 5.5) and forecasting.
type (
	// GenRecipe specifies a constructive IC-model TM generation.
	GenRecipe = tmgen.Recipe
	// ActivityModel is a fitted cyclostationary activity model.
	ActivityModel = tmgen.ActivityModel
)

var (
	// GenerateRecipe realizes a paper-style generation recipe, returning
	// the latent parameters and the evaluated series.
	GenerateRecipe = tmgen.Generate
	// FitActivityModel fits per-node harmonic activity models.
	FitActivityModel = tmgen.FitActivityModel
	// ExtendFromFit synthesizes future traffic from a fitted model.
	ExtendFromFit = tmgen.ExtendFromFit
)

// Experiments.
type (
	// ExperimentConfig scales the figure regenerations.
	ExperimentConfig = experiments.Config
	// ExperimentResult is one regenerated figure.
	ExperimentResult = experiments.Result
)

// RunAllExperiments regenerates every figure of the paper at the given
// scale, writing a report to out (nil for silent). Figures and the
// estimation bins inside them run concurrently under cfg.Workers
// (0 = GOMAXPROCS, 1 = sequential) with bit-identical results for any
// worker count.
func RunAllExperiments(cfg ExperimentConfig, out io.Writer) ([]*ExperimentResult, error) {
	return experiments.RunAll(experiments.NewWorld(cfg), out)
}
